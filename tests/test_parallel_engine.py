"""frontier-mp vs frontier: bit-identical results for any worker count.

The multiprocess engine's contract extends the frontier engine's: with
the same seed, ``engine="frontier-mp"`` produces byte-identical neighbor
arrays, an identical partition tree, an exactly equal (depth, work)
ledger, equal section totals and equal event counters — for *every*
worker count, on every workload, including the punt paths.  (Transitively
through :mod:`tests.test_engine_equivalence` this also pins frontier-mp
against the recursive reference.)  The suite additionally covers the
worker pool's failure modes and the leak-free-shutdown guarantee: a run
leaves no orphaned processes and no ``/dev/shm`` segment behind.
"""

from __future__ import annotations

import glob
import multiprocessing as mp
import time

import numpy as np
import pytest

import repro
from repro.core import ENGINE_REGISTRY, ENGINES, FastDnCConfig, SimpleDnCConfig
from repro.core.fast_dnc import parallel_nearest_neighborhood
from repro.core.simple_dnc import simple_parallel_dnc
from repro.parallel import WorkerError, WorkerPool, resolve_workers
from repro.parallel.shm import SHM_PREFIX
from repro.workloads import uniform_cube, with_duplicates


def _run(method: str, points, k: int, seed: int, **cfg):
    if method == "fast":
        return parallel_nearest_neighborhood(
            points, k, seed=seed, config=FastDnCConfig(**cfg)
        )
    return simple_parallel_dnc(points, k, seed=seed, config=SimpleDnCConfig(**cfg))


def _tree_shape(node):
    return [(n.size, n.is_leaf) for n in node.nodes()]


def _assert_mp_identical(method: str, points, k: int, seed: int, workers, **cfg):
    """frontier-mp with ``workers`` reproduces frontier bit-for-bit."""
    ref = _run(method, points, k, seed, engine="frontier", **cfg)
    got = _run(
        method, points, k, seed, engine="frontier-mp", workers=workers, **cfg
    )
    np.testing.assert_array_equal(
        ref.system.neighbor_indices, got.system.neighbor_indices
    )
    np.testing.assert_array_equal(
        ref.system.neighbor_sq_dists, got.system.neighbor_sq_dists
    )
    assert ref.cost.depth == got.cost.depth
    assert ref.cost.work == got.cost.work
    assert ref.machine.counters == got.machine.counters
    assert ref.machine.sections == got.machine.sections
    assert _tree_shape(ref.tree) == _tree_shape(got.tree)
    assert got.tree.check_partition()
    return ref, got


class TestBitIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 3, 4])
    @pytest.mark.parametrize("method", ["fast", "simple"])
    def test_identical_across_worker_counts(self, method, workers):
        _assert_mp_identical(method, uniform_cube(500, 2, seed=1), 2, 13, workers)

    def test_identical_3d(self):
        _assert_mp_identical("fast", uniform_cube(400, 3, seed=2), 2, 17, 2)

    def test_identical_with_duplicates(self):
        pts = with_duplicates(uniform_cube(300, 2, seed=3), 0.5, seed=3)
        _assert_mp_identical("fast", pts, 2, 19, 2)
        _assert_mp_identical("simple", pts, 2, 19, 2)

    @pytest.mark.parametrize("workers", [2, 3])
    def test_identical_under_forced_iota_punts(self, workers):
        ref, _ = _assert_mp_identical(
            "fast", uniform_cube(400, 2, seed=8), 1, 31, workers, iota_factor=1e-9
        )
        assert ref.stats.punts_iota > 0

    @pytest.mark.parametrize("workers", [2, 3])
    def test_identical_under_forced_marching_punts(self, workers):
        ref, _ = _assert_mp_identical(
            "fast", uniform_cube(400, 2, seed=9), 1, 37, workers, active_factor=1e-9
        )
        assert ref.stats.punts_marching > 0

    def test_series_agree_as_multisets(self):
        pts = uniform_cube(500, 2, seed=10)
        ref = _run("fast", pts, 2, 41, engine="frontier")
        got = _run("fast", pts, 2, 41, engine="frontier-mp", workers=3)
        assert sorted(ref.stats.straddler_fraction) == sorted(
            got.stats.straddler_fraction
        )
        assert sorted((m, tuple(a)) for m, a in ref.stats.marching_level_active) == \
            sorted((m, tuple(a)) for m, a in got.stats.marching_level_active)
        assert ref.stats.punts == got.stats.punts

    def test_worker_count_invariance(self):
        """workers=2 and workers=4 agree with each other, not just with 1."""
        pts = uniform_cube(450, 2, seed=11)
        a = _run("fast", pts, 2, 43, engine="frontier-mp", workers=2)
        b = _run("fast", pts, 2, 43, engine="frontier-mp", workers=4)
        np.testing.assert_array_equal(
            a.system.neighbor_indices, b.system.neighbor_indices
        )
        assert a.cost.work == b.cost.work
        assert a.machine.counters == b.machine.counters


class TestCoarsePlanEdgeCases:
    """Degenerate cut plans forced via ``REPRO_MP_SUBTREE_TARGET``: the
    engine must stay bit-identical and report the plan it actually ran."""

    def test_single_giant_subtree(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_SUBTREE_TARGET", "1")
        _, got = _assert_mp_identical(
            "fast", uniform_cube(400, 2, seed=21), 2, 61, 2
        )
        gauges = got.machine.metrics.gauges
        assert gauges["parallel.subtrees"] == 1.0
        assert gauges["parallel.cut_level"] == 0.0

    def test_more_workers_than_subtrees(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_SUBTREE_TARGET", "2")
        _, got = _assert_mp_identical(
            "fast", uniform_cube(400, 2, seed=22), 2, 67, 4
        )
        gauges = got.machine.metrics.gauges
        assert gauges["parallel.subtrees"] == 2.0
        # every per-worker gauge exists even for the idle workers
        for w in range(4):
            assert f"parallel.busy_seconds.{w}" in gauges

    @pytest.mark.parametrize("method", ["fast", "simple"])
    def test_serial_fallback_when_frontier_exhausts(self, method):
        """An input below the base size never reaches the cut target; the
        master must solve everything itself, bit-identically."""
        _, got = _assert_mp_identical(
            method, uniform_cube(40, 2, seed=23), 2, 71, 2
        )
        gauges = got.machine.metrics.gauges
        assert gauges["parallel.subtrees"] == 0.0
        assert gauges["parallel.cut_level"] == -1.0

    def test_fixed_target_invariant_across_worker_counts(self, monkeypatch):
        """With an absolute target the cut level is worker-independent."""
        monkeypatch.setenv("REPRO_MP_SUBTREE_TARGET", "4")
        pts = uniform_cube(500, 2, seed=24)
        runs = [
            _run("fast", pts, 2, 73, engine="frontier-mp", workers=w)
            for w in (1, 2, 4)
        ]
        cut_levels = {
            r.machine.metrics.gauges["parallel.cut_level"] for r in runs
        }
        subtrees = {
            r.machine.metrics.gauges["parallel.subtrees"] for r in runs
        }
        assert len(cut_levels) == 1 and len(subtrees) == 1
        assert subtrees.pop() >= 4.0


class TestLeakFreeShutdown:
    def test_run_leaves_no_processes_or_shm(self):
        before = set(glob.glob(f"/dev/shm/{SHM_PREFIX}*"))
        _run("fast", uniform_cube(400, 2, seed=4), 2, 23,
             engine="frontier-mp", workers=2)
        assert mp.active_children() == []
        after = set(glob.glob(f"/dev/shm/{SHM_PREFIX}*"))
        assert after <= before

    def test_failed_run_still_cleans_up(self):
        before = set(glob.glob(f"/dev/shm/{SHM_PREFIX}*"))
        with pytest.raises(ValueError):
            # k >= n is rejected after the engine would have started;
            # use a config-level failure instead: invalid workers
            repro.all_knn(uniform_cube(64, 2, 0), 1,
                          engine="frontier-mp", workers=0)
        assert mp.active_children() == []
        assert set(glob.glob(f"/dev/shm/{SHM_PREFIX}*")) <= before


class TestWorkerPool:
    def test_unknown_kernel_raises_worker_error(self):
        with WorkerPool(1) as pool:
            with pytest.raises(WorkerError, match="no_such_kernel"):
                pool.run_tasks("no_such_kernel", [{}])
        assert mp.active_children() == []

    def test_pool_survives_kernel_error(self):
        with WorkerPool(1) as pool:
            with pytest.raises(WorkerError):
                pool.run_tasks("no_such_kernel", [{}])
            # the worker is still serving after a failed kernel
            assert pool.run_tasks("init_run", []) == []

    def test_close_is_idempotent(self):
        pool = WorkerPool(2)
        pool.close()
        pool.close()
        assert mp.active_children() == []

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(0)


def _echo_kernel(payload):
    if payload.get("sleep"):
        time.sleep(payload["sleep"])
    return payload["value"]


class TestRunAssigned:
    """The coarse engine's dispatch shape: pipelined per-worker queues,
    out-of-order collection, payload-order results."""

    @pytest.fixture()
    def echo_pool(self):
        from repro.parallel import kernels as worker_kernels

        worker_kernels.KERNELS["_test_echo"] = _echo_kernel
        pool = WorkerPool(2)
        if pool.start_method != "fork":
            pool.close()
            del worker_kernels.KERNELS["_test_echo"]
            pytest.skip("test kernel injection needs fork workers")
        yield pool
        pool.close()
        worker_kernels.KERNELS.pop("_test_echo", None)

    def test_results_in_payload_order(self, echo_pool):
        # worker 0 sleeps on its first task; worker 1 drains three tasks
        # meanwhile — results must still come back in payload order
        payloads = [
            {"value": i, "sleep": 0.2 if i == 0 else 0.0} for i in range(5)
        ]
        assignment = [0, 1, 1, 1, 0]
        results = echo_pool.run_assigned("_test_echo", payloads, assignment)
        assert [t.result for t in results] == [0, 1, 2, 3, 4]
        assert [t.worker for t in results] == assignment
        assert echo_pool.tasks_done == 5
        assert all(t.completed >= t.submitted for t in results)

    def test_traffic_is_metered(self, echo_pool):
        echo_pool.run_assigned("_test_echo", [{"value": 1}], [0])
        assert echo_pool.dispatch_bytes > 0
        assert echo_pool.result_bytes > 0
        assert echo_pool.dispatch_seconds >= 0.0
        assert echo_pool.collect_seconds >= 0.0

    def test_validates_assignment(self, echo_pool):
        with pytest.raises(ValueError):
            echo_pool.run_assigned("_test_echo", [{"value": 1}], [])
        with pytest.raises(ValueError):
            echo_pool.run_assigned("_test_echo", [{"value": 1}], [5])

    def test_error_drains_outstanding_and_pool_survives(self, echo_pool):
        with pytest.raises(WorkerError, match="no_such_kernel"):
            echo_pool.run_assigned(
                "no_such_kernel", [{}, {}, {}], [0, 1, 0]
            )
        # failed tasks never count as busy time — the double-count the
        # old flush-window accounting suffered from is pinned out here
        assert echo_pool.busy_seconds == [0.0, 0.0]
        assert echo_pool.dispatch_window() is None
        results = echo_pool.run_assigned("_test_echo", [{"value": 9}], [1])
        assert results[0].result == 9


class TestEngineRegistry:
    """Satellite: one registry drives config, api and CLI choices."""

    def test_registry_and_engines_agree(self):
        assert ENGINES == tuple(ENGINE_REGISTRY)
        assert ENGINES == ("recursive", "frontier", "frontier-mp")
        assert ENGINE_REGISTRY["frontier-mp"].parallel
        assert not ENGINE_REGISTRY["frontier"].parallel

    def test_api_reexports_registry_engines(self):
        assert repro.ENGINES == ENGINES
        assert repro.api.ENGINES is repro.ENGINES

    def test_cli_choices_come_from_registry(self):
        from repro.cli import build_parser

        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if isinstance(a, __import__("argparse")._SubParsersAction)
        )
        checked = 0
        for name in ("knn", "scaling", "trace"):
            sp = sub.choices[name]
            engine = next(a for a in sp._actions if "--engine" in a.option_strings)
            assert tuple(engine.choices) == ENGINES
            assert any("--workers" in a.option_strings for a in sp._actions)
            checked += 1
        assert checked == 3

    @pytest.mark.parametrize("engine", ENGINES)
    def test_configs_accept_every_registry_engine(self, engine):
        assert FastDnCConfig(engine=engine).engine == engine
        assert SimpleDnCConfig(engine=engine).engine == engine

    def test_config_workers_validation(self):
        assert FastDnCConfig(workers=2).workers == 2
        assert FastDnCConfig().workers is None
        with pytest.raises(ValueError, match="workers"):
            FastDnCConfig(workers=0)


class TestFacadeAndObservability:
    def test_api_workers_kwarg(self):
        pts = uniform_cube(300, 2, seed=5)
        ref = repro.all_knn(pts, 2, seed=43, engine="frontier")
        got = repro.all_knn(pts, 2, seed=43, engine="frontier-mp", workers=2)
        np.testing.assert_array_equal(ref.indices, got.indices)
        np.testing.assert_array_equal(ref.sq_dists, got.sq_dists)
        assert ref.cost.work == got.cost.work

    def test_api_rejects_bad_workers(self):
        with pytest.raises(ValueError, match="workers"):
            repro.all_knn(uniform_cube(32, 2, 0), 1,
                          engine="frontier-mp", workers=-1)

    def test_build_index_mp(self):
        pts = uniform_cube(240, 2, seed=6)
        a = repro.build_index(pts, 2, seed=17, engine="frontier")
        b = repro.build_index(pts, 2, seed=17, engine="frontier-mp", workers=2)
        np.testing.assert_array_equal(a.query(pts[:5])[0], b.query(pts[:5])[0])

    def test_subtree_spans_and_parallel_metrics(self):
        pts = uniform_cube(400, 2, seed=7)
        result, tracer = repro.run_traced(
            pts, 1, method="fast", seed=47, engine="frontier-mp", workers=2
        )
        spans = [s for _, s in tracer.root.walk()]
        subtree = [s for s in spans if s.name == "parallel.subtree"]
        assert subtree, "frontier-mp runs must emit parallel.subtree spans"
        for s in subtree:
            assert 0 <= s.attrs["worker"] < 2
            assert s.attrs["subtree"] >= 0
            assert s.attrs["points"] >= 1
            assert s.attrs["wall_ms"] >= 0.0
            # subtree spans are observability-only: zero ledger cost
            assert s.cost.work == 0.0
        # one span per shipped subtree, every subtree index exactly once
        gauges = result.machine.metrics.gauges
        assert len(subtree) == int(gauges["parallel.subtrees"])
        assert sorted(s.attrs["subtree"] for s in subtree) == list(
            range(len(subtree))
        )
        # the master's own levels still emit serial frontier.level spans
        assert any(s.name == "frontier.level" for s in spans)
        counters = result.machine.metrics.counters
        assert gauges["parallel.workers"] == 2
        assert 0.0 <= gauges["parallel.utilization"] <= 1.0
        assert gauges["parallel.cut_level"] >= 0.0
        assert counters["parallel.tasks"] > 0
        assert counters["parallel.busy_seconds"] > 0.0

    def test_overhead_breakdown_metrics(self):
        """Dispatch overhead is attributed, not guessed: copy-in, pickle
        traffic and collect time are all reported."""
        pts = uniform_cube(500, 2, seed=9)
        res = _run("fast", pts, 2, 53, engine="frontier-mp", workers=2)
        gauges = res.machine.metrics.gauges
        counters = res.machine.metrics.counters
        assert gauges["parallel.copyin_seconds"] > 0.0
        assert gauges["parallel.dispatch_seconds"] > 0.0
        assert gauges["parallel.collect_seconds"] > 0.0
        assert counters["parallel.dispatch_bytes"] > 0
        assert counters["parallel.result_bytes"] > 0
        assert gauges["parallel.subtrees"] >= 1.0

    def test_traced_ledger_verifies(self):
        # run_traced cross-checks the span tree against the ledger on a
        # fresh machine; reaching here means the check passed
        pts = uniform_cube(350, 2, seed=8)
        for method in ("fast", "simple"):
            repro.run_traced(pts, 2, method=method, seed=3,
                             engine="frontier-mp", workers=2)

    def test_per_worker_busy_gauges(self):
        pts = uniform_cube(500, 2, seed=9)
        res = _run("fast", pts, 2, 53, engine="frontier-mp", workers=3)
        gauges = res.machine.metrics.gauges
        counters = res.machine.metrics.counters
        per_worker = [gauges[f"parallel.busy_seconds.{w}"] for w in range(3)]
        assert all(b >= 0.0 for b in per_worker)
        # the per-worker gauges decompose the pool-wide busy counter
        assert sum(per_worker) == pytest.approx(
            counters["parallel.busy_seconds"]
        )
        assert "parallel.busy_seconds.3" not in gauges

    def test_utilization_uses_dispatch_window(self):
        """utilization = busy / (W * dispatched-work span), never > 1.

        The denominator is the first-dispatch→last-completion window, not
        pool lifetime, so idle setup/teardown time cannot dilute it.
        """
        pts = uniform_cube(500, 2, seed=9)
        res = _run("fast", pts, 2, 53, engine="frontier-mp", workers=2)
        gauges = res.machine.metrics.gauges
        counters = res.machine.metrics.counters
        span = gauges["parallel.dispatch_span_seconds"]
        assert span > 0.0
        util = gauges["parallel.utilization"]
        assert 0.0 < util <= 1.0
        expected = min(1.0, counters["parallel.busy_seconds"] / (2 * span))
        assert util == pytest.approx(expected)

    def test_dispatch_window_requires_completed_work(self):
        with WorkerPool(1) as pool:
            assert pool.dispatch_window() is None
            assert pool.run_tasks("init_run", []) == []
            assert pool.dispatch_window() is None  # nothing was dispatched
            with pytest.raises(WorkerError):
                pool.run_tasks("no_such_kernel", [{}])
            # dispatched but never completed: still no usable window
            assert pool.dispatch_window() is None

    def test_task_results_carry_timeline(self):
        pts = uniform_cube(400, 2, seed=12)
        machine_res, tracer = repro.run_traced(
            pts, 1, method="fast", seed=59, engine="frontier-mp", workers=2
        )
        subtrees = [s for _, s in tracer.root.walk()
                    if s.name == "parallel.subtree"]
        assert subtrees
        for s in subtrees:
            # subtree spans sit on the master timeline at the task's
            # submitted→completed window (rebased to the tracer epoch)
            assert s.wall_end >= s.wall_start >= 0.0
