"""Recursive separator trees over k-NN graphs — the paper's application."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import power_law_fit
from repro.baselines import brute_force_knn
from repro.core.graph_separators import (
    build_separator_tree,
    check_separation,
    nested_dissection_order,
    separator_profile,
)
from repro.core.knn_graph import knn_graph_edges
from repro.workloads import clustered, uniform_cube, with_duplicates


@pytest.fixture(scope="module")
def graph_and_tree():
    pts = uniform_cube(1200, 2, 7)
    system = brute_force_knn(pts, 2)
    tree = build_separator_tree(system, seed=1)
    return system, tree


class TestStructure:
    def test_root_covers_all_vertices(self, graph_and_tree):
        system, tree = graph_and_tree
        np.testing.assert_array_equal(np.sort(tree.vertices), np.arange(len(system)))

    def test_parts_partition(self, graph_and_tree):
        _, tree = graph_and_tree
        for node in tree.nodes():
            if node.is_leaf:
                continue
            combined = np.concatenate(
                [node.left.vertices, node.right.vertices, node.separator_vertices]
            )
            np.testing.assert_array_equal(np.sort(combined), np.sort(node.vertices))

    def test_height_logarithmic(self, graph_and_tree):
        _, tree = graph_and_tree
        assert 3 <= tree.height() <= 16

    def test_leaves_small(self, graph_and_tree):
        _, tree = graph_and_tree
        for node in tree.nodes():
            if node.is_leaf:
                assert node.size <= 64 or node.separator_vertices.size == 0


class TestSeparationProperty:
    def test_no_cross_edges(self, graph_and_tree):
        """The Sphere Separator Theorem's guarantee, verified exactly."""
        system, tree = graph_and_tree
        assert check_separation(system, tree)

    @pytest.mark.parametrize("d,k", [(2, 1), (3, 2)])
    def test_across_parameters(self, d, k):
        pts = uniform_cube(700, d, 10 * d + k)
        system = brute_force_knn(pts, k)
        tree = build_separator_tree(system, seed=2)
        assert check_separation(system, tree)

    def test_clustered_graph(self):
        pts = clustered(800, 2, 11)
        system = brute_force_knn(pts, 1)
        tree = build_separator_tree(system, seed=3)
        assert check_separation(system, tree)

    def test_duplicates_degrade_gracefully(self):
        pts = with_duplicates(uniform_cube(300, 2, 12), 0.5, 13)
        system = brute_force_knn(pts, 1)
        tree = build_separator_tree(system, seed=4)
        assert check_separation(system, tree)

    def test_check_detects_violation(self):
        # build a private tree: this test corrupts it in place
        pts = uniform_cube(600, 2, 77)
        system = brute_force_knn(pts, 2)
        tree = build_separator_tree(system, seed=8)
        if tree.is_leaf:
            pytest.skip("degenerate tree")
        # corrupt: move a separator vertex into the left part
        node = tree
        if node.separator_vertices.size == 0:
            pytest.skip("no separator vertices at root")
        stolen = node.separator_vertices[:1]
        node.left.vertices = np.concatenate([node.left.vertices, stolen])
        node.separator_vertices = node.separator_vertices[1:]
        # either the partition check or the edge check must now fail, unless
        # the stolen vertex had no cross edges -- so corrupt the right too
        node.right.vertices = np.concatenate([node.right.vertices, stolen])
        assert not check_separation(system, tree)


class TestSeparatorSizes:
    def test_profile_exponent(self):
        """Separator sizes across scales fit ~ size^{(d-1)/d}."""
        pts = uniform_cube(4000, 2, 14)
        system = brute_force_knn(pts, 1)
        tree = build_separator_tree(system, seed=5, min_size=64)
        prof = [(m, s) for m, s in separator_profile(tree) if m >= 128 and s >= 1]
        sizes = [m for m, _ in prof]
        seps = [s for _, s in prof]
        fit = power_law_fit(sizes, seps)
        assert 0.3 <= fit.exponent <= 0.85  # around (d-1)/d = 0.5 with noise

    def test_separators_sublinear(self, graph_and_tree):
        _, tree = graph_and_tree
        for m, s in separator_profile(tree):
            assert s <= max(10, 6 * m**0.75)


class TestNestedDissection:
    def test_order_is_permutation(self, graph_and_tree):
        system, tree = graph_and_tree
        order = nested_dissection_order(tree)
        np.testing.assert_array_equal(np.sort(order), np.arange(len(system)))

    def test_separators_eliminated_after_their_parts(self, graph_and_tree):
        _, tree = graph_and_tree
        order = nested_dissection_order(tree)
        pos = np.empty(order.shape[0], dtype=np.int64)
        pos[order] = np.arange(order.shape[0])
        for node in tree.nodes():
            if node.is_leaf or node.separator_vertices.size == 0:
                continue
            children = np.concatenate([node.left.vertices, node.right.vertices])
            if children.size == 0:
                continue
            assert pos[node.separator_vertices].min() > pos[children].max()

    def test_ordering_reduces_bandwidth_vs_random(self, graph_and_tree):
        """Sanity: the dissection ordering has lower max 'elimination
        frontier' than a random ordering (a cheap proxy for fill)."""
        system, tree = graph_and_tree
        edges = knn_graph_edges(system)
        order = nested_dissection_order(tree)

        def frontier(perm: np.ndarray) -> int:
            pos = np.empty(perm.shape[0], dtype=np.int64)
            pos[perm] = np.arange(perm.shape[0])
            return int(np.abs(pos[edges[:, 0]] - pos[edges[:, 1]]).max())

        rng = np.random.default_rng(6)
        rand = frontier(rng.permutation(len(system)))
        nd = frontier(order)
        assert nd <= rand


class TestEliminationFill:
    def test_path_graph_no_fill_in_order(self):
        """Eliminating a path end-to-end creates no fill."""
        from repro.core.graph_separators import elimination_fill

        n = 20
        edges = np.stack([np.arange(n - 1), np.arange(1, n)], axis=1)
        assert elimination_fill(edges, np.arange(n)) == 0

    def test_star_graph_center_first_fills_clique(self):
        from repro.core.graph_separators import elimination_fill

        n = 6
        edges = np.stack([np.zeros(n - 1, dtype=int), np.arange(1, n)], axis=1)
        # eliminating the hub first connects all leaves pairwise
        first = elimination_fill(edges, np.arange(n))
        assert first == (n - 1) * (n - 2) // 2
        # hub last: leaves are degree-1, no fill
        last = elimination_fill(edges, np.concatenate([np.arange(1, n), [0]]))
        assert last == 0

    def test_cycle_graph_fill(self):
        from repro.core.graph_separators import elimination_fill

        n = 8
        edges = np.stack([np.arange(n), (np.arange(n) + 1) % n], axis=1)
        # eliminating a cycle in order creates exactly n-3 fill edges
        assert elimination_fill(edges, np.arange(n)) == n - 3

    def test_nd_order_beats_random_on_grid_graph(self):
        from repro.core.graph_separators import elimination_fill
        from repro.workloads import grid_jitter

        pts = grid_jitter(400, 2, 31)
        system = brute_force_knn(pts, 2)
        tree = build_separator_tree(system, seed=32, min_size=16)
        edges = knn_graph_edges(system)
        nd = elimination_fill(edges, nested_dissection_order(tree))
        rnd = elimination_fill(edges, np.random.default_rng(33).permutation(400))
        assert nd < rnd
