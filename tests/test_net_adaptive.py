"""The adaptive batching window: pure arithmetic under a fake clock.

The controller's contract: window ∝ expected batch fill (arrival-rate
EWMA × ceiling), capped by the SLO term, zeroed for a full queue,
clamped to [floor, ceiling], every decision exported to the metrics
registry.  All of it is deterministic given the call sequence, so each
property pins down exactly.
"""

from __future__ import annotations

import pytest

from repro.net.adaptive import AdaptiveWindow
from repro.obs.metrics import Metrics


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def _controller(**kwargs):
    defaults = dict(ceiling_ms=20.0, max_batch=8, clock=FakeClock())
    defaults.update(kwargs)
    return AdaptiveWindow(**defaults)


def _drive_rate(win, per_second: float, arrivals: int = 200):
    """Feed a steady arrival stream until the EWMA converges."""
    t = 100.0
    for _ in range(arrivals):
        t += 1.0 / per_second
        win.on_arrival(1, now=t)
    return t


class TestWindowDecision:
    def test_idle_stream_gets_zero_window(self):
        win = _controller()
        assert win.window_ms() == 0.0  # no arrivals at all
        _drive_rate(win, per_second=1.0)  # 1/s × 20ms ≪ max_batch=8
        assert win.window_ms() < 0.1

    def test_heavy_stream_opens_to_ceiling(self):
        win = _controller()
        # 1000/s × 20ms = 20 expected ≥ max_batch=8 → full ceiling
        _drive_rate(win, per_second=1000.0)
        assert win.window_ms() == pytest.approx(20.0)

    def test_window_proportional_to_fill(self):
        win = _controller()
        # 200/s × 20ms = 4 expected = half of max_batch → half ceiling
        _drive_rate(win, per_second=200.0)
        assert win.window_ms() == pytest.approx(10.0, rel=0.1)

    def test_full_queue_never_waits(self):
        win = _controller()
        _drive_rate(win, per_second=1000.0)
        assert win.window_ms(queue_depth=8) == 0.0

    def test_same_instant_burst_counts_as_high_load(self):
        win = _controller()
        for _ in range(50):
            win.on_arrival(1, now=5.0)  # dt == 0 must not divide by zero
        assert win.rate > 1000.0

    def test_floor_applies_only_under_load(self):
        win = _controller(floor_ms=2.0)
        assert win.window_ms() == 0.0  # idle stays at 0
        _drive_rate(win, per_second=20.0)  # tiny but nonzero fill
        assert win.window_ms() >= 2.0


class TestSloTerm:
    def test_p95_above_slo_shrinks_window(self):
        win = _controller(slo_p95_ms=5.0)
        _drive_rate(win, per_second=1000.0)
        base = win.window_ms()
        assert base == pytest.approx(20.0)
        for _ in range(100):
            win.on_latency(10.0)  # p95 = 2× the SLO
        assert win.window_ms() == pytest.approx(base * 0.5)

    def test_p95_under_slo_leaves_window_alone(self):
        win = _controller(slo_p95_ms=5.0)
        _drive_rate(win, per_second=1000.0)
        for _ in range(100):
            win.on_latency(1.0)
        assert win.window_ms() == pytest.approx(20.0)

    def test_observed_p95_nearest_rank(self):
        win = _controller()
        assert win.observed_p95_ms() is None
        for v in range(1, 101):
            win.on_latency(float(v))
        assert win.observed_p95_ms() == 95.0


class TestRateEstimate:
    def test_decay_idle_caps_rate_after_silence(self):
        clock = FakeClock()
        win = _controller(clock=clock)
        t = _drive_rate(win, per_second=1000.0)
        assert win.rate > 500.0
        win.decay_idle(now=t + 2.0)  # 2s of silence → rate ≤ ~0.4/s
        assert win.rate < 1.0
        assert win.window_ms() < 0.1

    def test_decay_idle_never_raises_rate(self):
        win = _controller()
        t = _drive_rate(win, per_second=5.0)
        before = win.rate
        win.decay_idle(now=t + 1e-4)  # near-zero gap: cap is huge
        assert win.rate == before


class TestExportAndValidation:
    def test_every_decision_emits_gauge_and_series(self):
        metrics = Metrics()
        win = _controller(metrics=metrics)
        _drive_rate(win, per_second=1000.0)
        for _ in range(3):
            value = win.window_ms()
        assert metrics.gauges["net.window_ms"] == pytest.approx(value)
        assert len(metrics.samples("net.window_ticks")) == 3

    def test_validation(self):
        with pytest.raises(ValueError, match="ceiling_ms"):
            _controller(ceiling_ms=-1.0)
        with pytest.raises(ValueError, match="max_batch"):
            _controller(max_batch=0)
        with pytest.raises(ValueError, match="alpha"):
            _controller(alpha=0.0)
        with pytest.raises(ValueError, match="floor_ms"):
            _controller(floor_ms=30.0)
