"""k-NN graph construction from neighborhood systems."""

from __future__ import annotations

import numpy as np

from repro.baselines import brute_force_knn
from repro.core.knn_graph import adjacency_lists, knn_graph_edges, max_degree, to_networkx
from repro.geometry.kissing import kissing_number
from repro.pvm.machine import Machine
from repro.workloads import uniform_cube


def line_points(n: int) -> np.ndarray:
    return np.stack([np.arange(n, dtype=float), np.zeros(n)], axis=1)


class TestEdges:
    def test_line_graph_k1(self):
        """Points on a line with increasing gaps: NN graph is a path-ish."""
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [2.5, 0.0]])
        edges = knn_graph_edges(brute_force_knn(pts, 1))
        np.testing.assert_array_equal(edges, [[0, 1], [1, 2]])

    def test_symmetric_definition(self):
        """(i,j) present if i in kNN(j) OR j in kNN(i)."""
        # three clustered + one distant point whose NN is in the cluster
        pts = np.array([[0.0, 0.0], [0.1, 0.0], [0.2, 0.0], [5.0, 0.0]])
        edges = knn_graph_edges(brute_force_knn(pts, 1))
        assert [2, 3] in edges.tolist()  # 3's NN is 2, though 2's NN is 1

    def test_rows_canonical(self):
        pts = uniform_cube(100, 2, 0)
        edges = knn_graph_edges(brute_force_knn(pts, 2))
        assert (edges[:, 0] < edges[:, 1]).all()
        assert np.unique(edges, axis=0).shape == edges.shape

    def test_edge_count_bounds(self):
        n, k = 200, 3
        edges = knn_graph_edges(brute_force_knn(uniform_cube(n, 2, 1), k))
        assert n * k / 2 <= edges.shape[0] <= n * k

    def test_machine_charged(self):
        m = Machine()
        knn_graph_edges(brute_force_knn(uniform_cube(64, 2, 2), 2), machine=m)
        assert m.total.work > 0

    def test_padded_slots_ignored(self):
        pts = np.zeros((1, 2))
        system = brute_force_knn(pts, 1)  # padded: no neighbors exist
        assert knn_graph_edges(system).shape == (0, 2)


class TestDegreesAndAdjacency:
    def test_max_degree_le_density_bound(self):
        for d in (2, 3):
            for k in (1, 2):
                pts = uniform_cube(300, d, 10 * d + k)
                deg = max_degree(brute_force_knn(pts, k))
                # each vertex has k out-edges; in-degree bounded by the
                # kissing-number argument
                assert deg <= k * (kissing_number(d) + 1)

    def test_adjacency_consistent_with_edges(self):
        pts = uniform_cube(50, 2, 3)
        system = brute_force_knn(pts, 2)
        adj = adjacency_lists(system)
        edges = set(map(tuple, knn_graph_edges(system)))
        for i, nbrs in enumerate(adj):
            for j in nbrs:
                assert (min(i, j), max(i, j)) in edges

    def test_empty_graph_degree(self):
        assert max_degree(brute_force_knn(np.zeros((1, 2)), 1)) == 0


class TestNetworkx:
    def test_export(self):
        pts = uniform_cube(40, 2, 4)
        system = brute_force_knn(pts, 1)
        g = to_networkx(system)
        assert g.number_of_nodes() == 40
        assert g.number_of_edges() == knn_graph_edges(system).shape[0]
        assert "pos" in g.nodes[0]

    def test_knn_graph_connectivity_k3(self):
        """k=3 on uniform points: overwhelmingly one connected component."""
        import networkx as nx

        pts = uniform_cube(150, 2, 5)
        g = to_networkx(brute_force_knn(pts, 3))
        assert nx.number_connected_components(g) <= 3
