"""The kernel layer's bit-identity matrix.

The tentpole contract of ``repro.kernels``: every backend is
bit-identical to the numpy reference on every op, and therefore every
(backend x dtype x engine x workers) combination of a run produces the
same neighbors, the same tree shape, the same (depth, work) ledger, the
same per-phase sections and the same event counters.  The numba half of
the matrix runs only where numba is importable (the CI ``kernels`` job
installs the ``repro[perf]`` extra for exactly this purpose); the
skip-gated tests still pin the numpy-vs-numpy diagonal everywhere.

Also here: the dtype plumbing guarantees — float32 storage is preserved
end to end (no hidden float64 upcasts of the stored arrays, no silent
copies of already-conforming inputs).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.fast_dnc import FastDnCConfig, parallel_nearest_neighborhood
from repro.core.simple_dnc import SimpleDnCConfig, simple_parallel_dnc
from repro.geometry.points import as_points
from repro.kernels import numba_available, registry, use_backend
from repro.kernels.reference import TABLE
from repro.workloads import uniform_cube, with_duplicates

needs_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not installed (repro[perf] extra)"
)

BACKENDS = ["numpy"] + (["numba"] if numba_available() else [])


@pytest.fixture(autouse=True)
def _restore_backend():
    before = registry._ACTIVE
    yield
    registry._ACTIVE = before


def _ledger(res):
    return (
        res.cost.depth,
        res.cost.work,
        dict(res.machine.counters),
        {k: (c.depth, c.work) for k, c in res.machine.sections.items()},
    )


def _tree_shape(node):
    return [(n.size, n.is_leaf) for n in node.nodes()]


def _assert_same_run(a, b):
    np.testing.assert_array_equal(
        a.system.neighbor_indices, b.system.neighbor_indices
    )
    np.testing.assert_array_equal(
        a.system.neighbor_sq_dists, b.system.neighbor_sq_dists
    )
    assert _ledger(a) == _ledger(b)
    assert _tree_shape(a.tree) == _tree_shape(b.tree)


class TestBackendMatrix:
    """numpy vs numba, across dtypes, engines and worker counts."""

    @needs_numba
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize("engine", ["recursive", "frontier"])
    def test_fast_backend_identity(self, engine, dtype):
        pts = uniform_cube(900, 2, seed=21)
        runs = {}
        for backend in ("numpy", "numba"):
            cfg = FastDnCConfig(engine=engine, kernels=backend, dtype=dtype)
            runs[backend] = parallel_nearest_neighborhood(
                pts, 3, seed=21, config=cfg
            )
        _assert_same_run(runs["numpy"], runs["numba"])

    @needs_numba
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_fast_mp_backend_identity(self, workers):
        pts = uniform_cube(1200, 2, seed=22)
        runs = {}
        for backend in ("numpy", "numba"):
            cfg = FastDnCConfig(
                engine="frontier-mp", workers=workers, kernels=backend
            )
            runs[backend] = parallel_nearest_neighborhood(
                pts, 2, seed=22, config=cfg
            )
        _assert_same_run(runs["numpy"], runs["numba"])

    @needs_numba
    def test_simple_backend_identity(self):
        pts = uniform_cube(700, 2, seed=23)
        runs = {}
        for backend in ("numpy", "numba"):
            cfg = SimpleDnCConfig(engine="frontier", kernels=backend)
            runs[backend] = simple_parallel_dnc(pts, 2, seed=23, config=cfg)
        _assert_same_run(runs["numpy"], runs["numba"])

    @needs_numba
    def test_per_op_tables_bit_identical(self):
        """Every op in the numba table reproduces the reference exactly."""
        rng = np.random.default_rng(31)
        n, d = 3000, 2
        pts = rng.random((n, d))
        center = np.full(d, 0.5)
        normal = np.array([1.0, 0.0])
        radii = np.sqrt(rng.random(n)) * 0.05
        flat_ids = rng.permutation(n).astype(np.int64)
        seg_ids = np.sort(rng.integers(0, 12, size=n)).astype(np.int64)
        sides = np.where(rng.random(n) < 0.5, -1, 1).astype(np.int8)
        rows = (seg_ids % 6).astype(np.int64)
        sep_centers = rng.random((6, d))
        sep_radii = np.full(6, 0.25)
        sub = pts[:300]
        cand_rows = rng.integers(0, 50, size=2000).astype(np.int64)
        cand_idx = rng.integers(-1, n, size=2000).astype(np.int64)
        cand_sq = rng.random(2000)
        cases = {
            "sphere_side": (pts, center, 0.4),
            "hyperplane_side": (pts, normal, 0.5),
            "classify_balls_sphere": (pts, radii, center, 0.4),
            "classify_balls_hyperplane": (pts, radii, normal, 0.5),
            "classify_level_spheres": (
                pts, flat_ids, rows, sep_centers, sep_radii, radii
            ),
            "segmented_split_sides": (flat_ids, sides, seg_ids),
            "block_topk": (sub, 7),
            "brute_topk": (pts, 4, 1024),
            "merge_candidate_stream": (cand_rows, cand_idx, cand_sq, 50, 3),
        }
        numba_table = registry.kernel_table("numba")
        for op, args in cases.items():
            ref = TABLE[op](*args)
            got = numba_table[op](*args)
            ref = ref if isinstance(ref, tuple) else (ref,)
            got = got if isinstance(got, tuple) else (got,)
            for r, g in zip(ref, got):
                np.testing.assert_array_equal(r, g, err_msg=op)
                assert r.dtype == g.dtype, op

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_numpy_mp_matches_serial_per_dtype(self, dtype, workers):
        """The numpy diagonal of the matrix, runnable without numba."""
        pts = uniform_cube(1000, 2, seed=24)
        serial = parallel_nearest_neighborhood(
            pts, 2, seed=24,
            config=FastDnCConfig(engine="frontier", kernels="numpy", dtype=dtype),
        )
        mp = parallel_nearest_neighborhood(
            pts, 2, seed=24,
            config=FastDnCConfig(
                engine="frontier-mp", workers=workers, kernels="numpy",
                dtype=dtype,
            ),
        )
        _assert_same_run(serial, mp)


class TestFloat32Exactness:
    def test_fast_f32_matches_brute_f32(self):
        pts = uniform_cube(800, 3, seed=25)
        fast = repro.all_knn(pts, k=3, method="fast", seed=25, dtype="float32")
        brute = repro.all_knn(pts, k=3, method="brute", dtype="float32")
        np.testing.assert_array_equal(fast.indices, brute.indices)
        np.testing.assert_array_equal(fast.sq_dists, brute.sq_dists)

    def test_f32_duplicates_workload(self):
        # duplicates create exact distance ties, where fast and brute may
        # pick different (equidistant) ids — the repo-wide contract is
        # distance equality, as in verify_system / same_distances
        pts = with_duplicates(uniform_cube(400, 2, seed=26), 0.5, seed=26)
        fast = repro.all_knn(pts, k=2, method="fast", seed=26, dtype="float32")
        brute = repro.all_knn(pts, k=2, method="brute", dtype="float32")
        np.testing.assert_array_equal(fast.sq_dists, brute.sq_dists)
        assert fast.system.same_distances(brute.system)

    def test_f32_cross_engine_identity(self):
        pts = uniform_cube(1100, 2, seed=27)
        runs = [
            repro.all_knn(pts, k=2, method="fast", seed=27,
                          engine=engine, dtype="float32")
            for engine in ("recursive", "frontier")
        ]
        _assert_same_run(runs[0], runs[1])

    def test_f32_storage_is_preserved(self):
        pts = uniform_cube(300, 2, seed=28)
        res = repro.all_knn(pts, k=2, method="fast", seed=28, dtype="float32")
        assert res.system.points.dtype == np.float32
        # distances are float64 even over float32 storage
        assert res.system.neighbor_sq_dists.dtype == np.float64

    def test_build_index_rejects_f32(self):
        pts = uniform_cube(100, 2, seed=29)
        with pytest.raises(ValueError, match="float64' only"):
            repro.build_index(pts, k=2, seed=29, dtype="float32")

    def test_f32_query_path(self):
        from repro.core.query_points import knn_query
        from repro.kernels.layout import FlatTree

        pts = uniform_cube(600, 2, seed=29)
        res = parallel_nearest_neighborhood(
            pts, 2, seed=29, config=FastDnCConfig(dtype="float32")
        )
        stored = res.system.points
        assert stored.dtype == np.float32
        layout = FlatTree.from_tree(res.tree)
        assert layout is not None
        qs = uniform_cube(150, 2, seed=92)
        idx, sq = knn_query(res.tree, stored, qs, 2, layout=layout)
        # layout and pointer-walk descents are bit-identical
        idx_walk, sq_walk = knn_query(res.tree, stored, qs, 2)
        np.testing.assert_array_equal(idx, idx_walk)
        np.testing.assert_array_equal(sq, sq_walk)
        # reference: brute force against the stored float32 coordinates
        diffs = stored[None, :, :].astype(np.float64) - np.asarray(
            qs, dtype=np.float64
        )[:, None, :]
        all_sq = np.einsum("qnd,qnd->qn", diffs, diffs)
        ref_idx = np.argsort(all_sq, axis=1, kind="stable")[:, :2]
        ref_sq = np.take_along_axis(all_sq, ref_idx, axis=1)
        np.testing.assert_array_equal(sq, ref_sq)
        np.testing.assert_array_equal(idx, ref_idx)


class TestDtypePreservation:
    """Satellite: no hidden float64 upcasts, no silent copies."""

    def test_as_points_preserves_f32_without_copy(self):
        arr = np.ascontiguousarray(
            np.random.default_rng(0).random((50, 2)), dtype=np.float32
        )
        out = as_points(arr, dtype=None)
        assert out.dtype == np.float32
        assert out is arr  # already conforming: no copy

    def test_as_points_f64_no_copy(self):
        arr = np.ascontiguousarray(np.random.default_rng(0).random((50, 2)))
        out = as_points(arr, dtype=None)
        assert out is arr

    def test_as_points_default_still_upcasts(self):
        arr = np.random.default_rng(0).random((50, 2)).astype(np.float32)
        out = as_points(arr)
        assert out.dtype == np.float64

    def test_int_input_becomes_f64_under_preserve(self):
        arr = np.arange(20, dtype=np.int64).reshape(10, 2)
        out = as_points(arr, dtype=None)
        assert out.dtype == np.float64

    def test_run_does_not_copy_conforming_f32(self):
        pts = np.ascontiguousarray(uniform_cube(300, 2, seed=30), np.float32)
        res = parallel_nearest_neighborhood(
            pts, 2, seed=30, config=FastDnCConfig(dtype="float32")
        )
        assert res.system.points is pts

    def test_serving_index_preserves_f32(self):
        from repro.serve import ServingIndex

        pts = uniform_cube(400, 2, seed=31)
        ix = ServingIndex.build(pts, k=2, seed=31, dtype="float32")
        assert ix.points.dtype == np.float32
        idx, sq = ix.execute("knn", uniform_cube(60, 2, seed=93))
        assert sq.dtype == np.float64


class TestWorkerBackendPinning:
    def test_master_ships_resolved_backend(self):
        """Workers receive the resolved name, never 'auto'."""
        pts = uniform_cube(900, 2, seed=32)
        with use_backend("numpy"):
            res = parallel_nearest_neighborhood(
                pts, 2, seed=32,
                config=FastDnCConfig(engine="frontier-mp", workers=2,
                                     kernels="numpy"),
            )
        ref = parallel_nearest_neighborhood(
            pts, 2, seed=32, config=FastDnCConfig(engine="frontier")
        )
        _assert_same_run(res, ref)
