"""Tests for the machine ledger: parallel blocks, scan policies, counters."""

from __future__ import annotations

import math

import pytest

from repro.pvm.cost import Cost
from repro.pvm.machine import SCAN_POLICIES, Machine


class TestBasicCharging:
    def test_fresh_machine_is_zero(self):
        m = Machine()
        assert m.total == Cost(0, 0)

    def test_sequential_charges_add(self):
        m = Machine()
        m.charge(Cost(1, 10))
        m.charge(Cost(2, 20))
        assert m.total == Cost(3, 30)

    def test_unknown_scan_policy_rejected(self):
        with pytest.raises(ValueError):
            Machine(scan="quantum")


class TestParallelBlocks:
    def test_two_branches_max_depth_sum_work(self):
        m = Machine()
        with m.parallel() as p:
            with p.branch():
                m.charge(Cost(3, 10))
            with p.branch():
                m.charge(Cost(5, 10))
        assert m.total == Cost(5, 20)

    def test_empty_parallel_block_is_free(self):
        m = Machine()
        with m.parallel():
            pass
        assert m.total == Cost(0, 0)

    def test_sequential_within_branch(self):
        m = Machine()
        with m.parallel() as p:
            with p.branch():
                m.charge(Cost(1, 1))
                m.charge(Cost(1, 1))
            with p.branch():
                m.charge(Cost(1, 1))
        assert m.total == Cost(2, 3)

    def test_nested_parallel(self):
        m = Machine()
        with m.parallel() as outer:
            with outer.branch():
                with m.parallel() as inner:
                    with inner.branch():
                        m.charge(Cost(4, 1))
                    with inner.branch():
                        m.charge(Cost(6, 1))
            with outer.branch():
                m.charge(Cost(5, 1))
        assert m.total == Cost(6, 3)

    def test_recursion_shape_matches_manual_computation(self):
        # a perfectly balanced recursion: depth = levels, work = n * levels
        m = Machine()

        def recurse(n: int) -> None:
            if n == 1:
                m.charge(Cost(1, 1))
                return
            m.charge(Cost(1, n))
            with m.parallel() as p:
                with p.branch():
                    recurse(n // 2)
                with p.branch():
                    recurse(n // 2)

        recurse(8)
        # levels: charge 1 depth at sizes 8, 4, 2 then leaf 1 -> depth 4
        assert m.total.depth == 4
        # work: 8 + 2*4 + 4*2 + 8*1 = 32
        assert m.total.work == 32

    def test_branch_after_close_rejected(self):
        m = Machine()
        with m.parallel() as p:
            pass
        with pytest.raises(RuntimeError):
            with p.branch():
                pass

    def test_total_inside_branch_rejected(self):
        m = Machine()
        with m.parallel() as p:
            with p.branch():
                with pytest.raises(RuntimeError):
                    _ = m.total


class TestMeasure:
    def test_measure_reports_region_cost(self):
        m = Machine()
        m.charge(Cost(1, 1))
        with m.measure() as get:
            m.charge(Cost(2, 5))
            m.charge(Cost(3, 5))
        assert get() == Cost(5, 10)
        assert m.total == Cost(6, 11)

    def test_measure_nested_parallel(self):
        m = Machine()
        with m.measure() as get:
            with m.parallel() as p:
                with p.branch():
                    m.charge(Cost(7, 1))
                with p.branch():
                    m.charge(Cost(2, 1))
        assert get() == Cost(7, 2)


class TestScanPolicies:
    def test_unit_scan_depth_one(self):
        m = Machine(scan="unit")
        assert m.scan_cost(1024).depth == 1.0
        assert m.scan_cost(1024).work == 1024.0

    def test_log_scan_depth(self):
        m = Machine(scan="log")
        assert m.scan_cost(1024).depth == 10.0

    def test_loglog_scan_depth(self):
        m = Machine(scan="loglog")
        assert m.scan_cost(2**16).depth == math.ceil(math.log2(16))

    def test_scan_of_empty_vector_is_free(self):
        for policy in SCAN_POLICIES:
            assert Machine(scan=policy).scan_cost(0) == Cost(0, 0)

    def test_scan_of_single_element(self):
        for policy in SCAN_POLICIES:
            c = Machine(scan=policy).scan_cost(1)
            assert c.depth >= 1.0 and c.work == 1.0


class TestCostSchedules:
    def test_ewise_cost(self):
        m = Machine()
        assert m.ewise_cost(100, 2.0) == Cost(2, 200)

    def test_ewise_empty(self):
        assert Machine().ewise_cost(0) == Cost(0, 0)

    def test_permute_cost(self):
        assert Machine().permute_cost(64) == Cost(1, 64)

    def test_serial_cost(self):
        assert Machine().serial_cost(5) == Cost(5, 5)

    def test_serial_cost_nonpositive_free(self):
        assert Machine().serial_cost(0) == Cost(0, 0)


class TestCounters:
    def test_bump_counts(self):
        m = Machine()
        m.bump("punts")
        m.bump("punts", 2)
        assert m.counters["punts"] == 3

    def test_fork_costs(self):
        m = Machine()
        m.fork_costs([Cost(2, 5), Cost(7, 5), Cost(1, 5)])
        assert m.total == Cost(7, 15)


class TestSections:
    def test_costs_attributed_and_still_charged(self):
        m = Machine()
        with m.section("setup"):
            m.charge(Cost(1, 10))
        with m.section("solve"):
            m.charge(Cost(2, 20))
        assert m.sections["setup"] == Cost(1, 10)
        assert m.sections["solve"] == Cost(2, 20)
        assert m.total == Cost(3, 30)

    def test_repeated_sections_accumulate(self):
        m = Machine()
        for _ in range(3):
            with m.section("phase"):
                m.charge(Cost(1, 5))
        assert m.sections["phase"] == Cost(3, 15)

    def test_section_inside_parallel_branch(self):
        m = Machine()
        with m.parallel() as p:
            with p.branch():
                with m.section("left"):
                    m.charge(Cost(4, 1))
            with p.branch():
                m.charge(Cost(2, 1))
        assert m.sections["left"] == Cost(4, 1)
        assert m.total == Cost(4, 2)

    def test_section_survives_exceptions(self):
        m = Machine()
        with pytest.raises(RuntimeError):
            with m.section("risky"):
                m.charge(Cost(1, 1))
                raise RuntimeError("boom")
        assert m.sections["risky"] == Cost(1, 1)
        assert m.total == Cost(1, 1)
