"""Conformal maps: rotation, centering dilation, and circle transport —
the correctness core of the MTTV separator pull-back."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.centerpoints import iterated_radon_centerpoint, tukey_depth_estimate
from repro.geometry.conformal import ConformalMap, rotation_to_pole
from repro.geometry.stereographic import SphereCap, circle_to_separator, lift
from repro.separators.greatcircle import random_great_circle
from repro.workloads import uniform_cube


class TestRotationToPole:
    @given(st.integers(0, 300), st.integers(2, 5))
    def test_maps_unit_vector_to_pole(self, seed, m):
        rng = np.random.default_rng(seed)
        u = rng.standard_normal(m)
        u /= np.linalg.norm(u)
        q = rotation_to_pole(u)
        pole = np.zeros(m)
        pole[-1] = 1.0
        np.testing.assert_allclose(q @ u, pole, atol=1e-9)

    @given(st.integers(0, 300), st.integers(2, 5))
    def test_orthogonal(self, seed, m):
        rng = np.random.default_rng(seed)
        u = rng.standard_normal(m)
        q = rotation_to_pole(u / np.linalg.norm(u))
        np.testing.assert_allclose(q @ q.T, np.eye(m), atol=1e-10)

    def test_pole_itself_gives_identity(self):
        q = rotation_to_pole(np.array([0.0, 0.0, 1.0]))
        np.testing.assert_array_equal(q, np.eye(3))

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            rotation_to_pole(np.zeros(3))

    def test_householder_is_involution(self):
        u = np.array([1.0, 2.0, 2.0]) / 3.0
        q = rotation_to_pole(u)
        np.testing.assert_allclose(q @ q, np.eye(3), atol=1e-12)


class TestConformalMapConstruction:
    def test_centering_at_origin_is_identity(self):
        cmap = ConformalMap.centering(np.zeros(3))
        assert cmap.delta == 1.0
        np.testing.assert_array_equal(cmap.rotation, np.eye(3))

    def test_centering_clamps_outside_points(self):
        cmap = ConformalMap.centering(np.array([2.0, 0.0, 0.0]))
        assert 0 < cmap.delta <= 1.0

    def test_delta_formula(self):
        r = 0.5
        cmap = ConformalMap.centering(np.array([0.0, 0.0, r]))
        assert cmap.delta == pytest.approx(np.sqrt((1 - r) / (1 + r)))

    def test_non_orthogonal_rotation_rejected(self):
        with pytest.raises(ValueError):
            ConformalMap(np.ones((3, 3)), 0.5)

    def test_bad_delta_rejected(self):
        with pytest.raises(ValueError):
            ConformalMap(np.eye(3), 0.0)


class TestPointTransport:
    @given(st.integers(0, 200))
    @settings(max_examples=50)
    def test_points_stay_on_sphere(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.standard_normal((50, 2))
        y = lift(pts)
        z = iterated_radon_centerpoint(y, rng)
        cmap = ConformalMap.centering(z)
        ty = cmap.apply_to_sphere_points(y)
        np.testing.assert_allclose(np.linalg.norm(ty, axis=1), 1.0, rtol=1e-8)

    def test_centering_moves_centerpoint_to_origin(self):
        """After the map, the image point set has a centerpoint near 0 —
        the property that makes every great circle a balanced split."""
        pts = uniform_cube(1000, 2, 9)
        y = lift(pts)
        rng = np.random.default_rng(10)
        z = iterated_radon_centerpoint(y, rng)
        cmap = ConformalMap.centering(z)
        ty = cmap.apply_to_sphere_points(y)
        depth = tukey_depth_estimate(ty, np.zeros(3), rng, directions=300)
        assert depth >= 1000 // 8  # well above the n/(d+2) = n/4-ish target scale

    def test_identity_map_returns_input(self):
        cmap = ConformalMap(np.eye(3), 1.0)
        y = lift(np.random.default_rng(0).random((10, 2)))
        np.testing.assert_array_equal(cmap.apply_to_sphere_points(y), y)


class TestCircleTransport:
    """The key property: classifying points through the transform equals
    classifying them against the pulled-back explicit separator."""

    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_pull_back_consistency(self, d):
        rng = np.random.default_rng(100 + d)
        pts = rng.random((400, d)) * 2 - 1
        y = lift(pts)
        z = iterated_radon_centerpoint(y, rng)
        cmap = ConformalMap.centering(z)
        ty = cmap.apply_to_sphere_points(y)
        mismatches = 0
        for trial in range(20):
            circle = random_great_circle(rng, d + 1)
            transformed_side = np.sign(circle.side_of(ty))
            try:
                original = cmap.pull_back_circle(circle)
                sep = circle_to_separator(original)
            except ValueError:
                continue
            explicit_side = sep.side_of_points(pts).astype(float)
            agree = (np.sign(explicit_side) == transformed_side).mean()
            flip = (np.sign(explicit_side) == -transformed_side).mean()
            if max(agree, flip) < 0.995:
                mismatches += 1
        assert mismatches == 0

    def test_pull_back_of_identity_map_is_same_circle(self):
        cmap = ConformalMap(np.eye(3), 1.0)
        circle = SphereCap(np.array([0.3, 0.4, 0.5]), 0.0)
        back = cmap.pull_back_circle(circle)
        np.testing.assert_allclose(np.abs(back.normal @ circle.normal), 1.0, atol=1e-9)
        assert back.offset == pytest.approx(0.0, abs=1e-12)
