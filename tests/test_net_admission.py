"""Admission control under a fake clock: deterministic, no asyncio."""

from __future__ import annotations

import pytest

from repro.net.admission import AdmissionController, NetStats, TokenBucket


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
        assert bucket.try_acquire() == (True, 0.0)
        assert bucket.try_acquire() == (True, 0.0)
        ok, wait = bucket.try_acquire()
        assert not ok
        assert wait == pytest.approx(0.1)  # 1 token at 10/s
        clock.advance(0.1)
        assert bucket.try_acquire() == (True, 0.0)

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=3, clock=clock)
        clock.advance(10.0)
        assert bucket.tokens == pytest.approx(3.0)

    def test_unlimited_when_rate_none(self):
        bucket = TokenBucket(rate=None, burst=1, clock=FakeClock())
        for _ in range(1000):
            assert bucket.try_acquire() == (True, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate=1.0, burst=0)


class TestAdmissionController:
    def test_admit_release_roundtrip(self):
        stats = NetStats()
        ctl = AdmissionController(max_inflight=4, stats=stats, clock=FakeClock())
        ok, retry, reason = ctl.admit()
        assert ok and retry == 0.0 and reason == ""
        assert ctl.inflight == 1 and stats.inflight == 1
        ctl.release()
        assert ctl.inflight == 0 and stats.inflight == 0
        assert stats.requests == 1 and stats.accepted == 1

    def test_inflight_bound_sheds(self):
        stats = NetStats()
        ctl = AdmissionController(max_inflight=2, stats=stats, clock=FakeClock())
        assert ctl.admit()[0] and ctl.admit()[0]
        ok, retry, reason = ctl.admit()
        assert not ok and reason == "inflight" and retry > 0
        assert stats.rejected_inflight == 1
        ctl.release()
        assert ctl.admit()[0]  # capacity freed

    def test_rate_bound_sheds_with_honest_retry(self):
        clock = FakeClock()
        stats = NetStats()
        ctl = AdmissionController(rate=2.0, burst=1, max_inflight=100,
                                  stats=stats, clock=clock)
        assert ctl.admit()[0]
        ok, retry, reason = ctl.admit()
        assert not ok and reason == "rate"
        assert retry == pytest.approx(0.5)
        assert stats.rejected_rate == 1
        clock.advance(retry)
        assert ctl.admit()[0]

    def test_release_without_admit_raises(self):
        ctl = AdmissionController(clock=FakeClock())
        with pytest.raises(RuntimeError, match="release"):
            ctl.release()

    def test_validation(self):
        with pytest.raises(ValueError, match="max_inflight"):
            AdmissionController(max_inflight=0)


class TestNetStats:
    def test_prometheus_exposition_names(self):
        from repro.obs.metrics import Metrics

        metrics = Metrics()
        stats = NetStats(metrics=metrics)
        stats.requests += 3
        stats.inflight = 2
        stats.request_ms.observe(1.5)
        text = metrics.to_prometheus()
        assert 'repro_net_requests_total{key="net.requests"} 3.0' in text
        assert 'repro_net_inflight{key="net.inflight"} 2.0' in text
        # request_ms is a histogram family now: _bucket/_sum/_count
        assert "# TYPE repro_net_request_ms histogram" in text
        assert 'repro_net_request_ms_bucket{key="net.request_ms",le="+Inf"} 1.0' in text
        assert 'repro_net_request_ms_sum{key="net.request_ms"} 1.5' in text
        assert 'repro_net_request_ms_count{key="net.request_ms"} 1.0' in text
