"""The serving layer: index, cache, batcher — exactness and edge cases.

The contract under test everywhere: serving is a wall-clock optimization,
never a semantic one.  Every knob (batch size, cache state, wait budget)
must leave answers bit-identical to the per-point reference paths —
``NeighborhoodQueryStructure.query`` for covering requests, single-row
``knn_query`` / offline ``all_knn`` for k-NN requests.
"""

import numpy as np
import pytest

import repro
from repro.core.query_points import knn_query
from repro.pvm import Machine
from repro.serve import Batcher, ResultCache, ServingIndex


@pytest.fixture(scope="module")
def index():
    pts = repro.workloads.uniform_cube(1500, 2, seed=3)
    return ServingIndex.build(pts, k=3, seed=7, with_structure=True)


@pytest.fixture(scope="module")
def queries():
    return repro.workloads.uniform_cube(300, 2, seed=42)


# -- ServingIndex ---------------------------------------------------------


def test_execute_knn_matches_single_row_knn_query(index, queries):
    idx, sq = index.execute("knn", queries)
    for i in range(0, queries.shape[0], 37):
        si, ss = knn_query(index.tree, index.points, queries[i : i + 1], 3)
        assert np.array_equal(si[0], idx[i])
        assert np.array_equal(ss[0], sq[i])


def test_execute_covering_matches_per_point_query(index, queries):
    rows, ids = index.execute("covering", queries)
    assert np.array_equal(rows, np.sort(rows, kind="stable"))
    for i in range(0, queries.shape[0], 23):
        assert np.array_equal(ids[rows == i], index.structure.query(queries[i]))


def test_execute_batch_composition_invariance(index, queries):
    """Answers must not depend on which batch a point rides in."""
    full_idx, full_sq = index.execute("knn", queries)
    for cut in (1, 7, 128):
        parts = [
            index.execute("knn", queries[lo : lo + cut])
            for lo in range(0, queries.shape[0], cut)
        ]
        assert np.array_equal(np.concatenate([p[0] for p in parts]), full_idx)
        assert np.array_equal(np.concatenate([p[1] for p in parts]), full_sq)


def test_execute_matches_offline_all_knn(index):
    """Serving the data points themselves reproduces the offline result."""
    res = repro.all_knn(index.points, k=3, method="brute")
    idx, sq = index.execute("knn", index.points, k=4)
    n = index.points.shape[0]
    for i in range(0, n, 101):
        keep = idx[i] != i
        assert np.array_equal(idx[i][keep][:3], res.indices[i])
        assert np.array_equal(sq[i][keep][:3], res.sq_dists[i])


def test_execute_empty_batch(index):
    idx, sq = index.execute("knn", np.empty((0, 2)))
    assert idx.shape == (0, 3) and sq.shape == (0, 3)
    rows, ids = index.execute("covering", np.empty((0, 2)))
    assert rows.shape == (0,) and ids.shape == (0,)


def test_execute_k_at_least_n(queries):
    """k >= n answers with every data point, padded with (-1, inf)."""
    pts = repro.workloads.uniform_cube(6, 2, seed=0)
    small = ServingIndex.build(pts, k=2, seed=1)
    idx, sq = small.execute("knn", queries[:4], k=10)
    assert idx.shape == (4, 10)
    assert (np.sort(idx[:, :6], axis=1) == np.arange(6)).all()
    assert (idx[:, 6:] == -1).all() and np.isinf(sq[:, 6:]).all()
    assert (np.diff(sq[:, :6], axis=1) >= 0).all()


def test_execute_validates_inputs(index, queries):
    with pytest.raises(ValueError, match="kind"):
        index.execute("nearest", queries)
    with pytest.raises(ValueError, match="dimension mismatch"):
        index.execute("knn", np.zeros((3, 5)))
    with pytest.raises(ValueError, match="k must be"):
        index.execute("knn", queries, k=0)


def test_covering_requires_system(index, queries):
    bare = ServingIndex(index.points, index.tree, index.k)
    with pytest.raises(ValueError, match="k-neighborhood system"):
        bare.execute("covering", queries)


def test_save_load_roundtrip(tmp_path, index, queries):
    path = str(tmp_path / "index.pkl")
    index.save(path)
    loaded = ServingIndex.load(path)
    for kind in ("knn", "covering"):
        a = index.execute(kind, queries)
        b = loaded.execute(kind, queries)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])


# -- ResultCache ----------------------------------------------------------


def test_cache_lru_eviction_and_counters():
    cache = ResultCache(capacity=2)
    ka = cache.make_key("knn", 1, np.array([0.5, 0.5]))
    kb = cache.make_key("knn", 1, np.array([0.25, 0.75]))
    kc = cache.make_key("knn", 1, np.array([0.75, 0.25]))
    assert cache.get(ka) is None
    cache.put(ka, "A")
    cache.put(kb, "B")
    assert cache.get(ka) == "A"  # A now most-recent
    cache.put(kc, "C")  # evicts B
    assert cache.get(kb) is None
    assert cache.get(ka) == "A" and cache.get(kc) == "C"
    assert cache.hits == 3 and cache.misses == 2
    assert cache.hit_rate == pytest.approx(0.6)


def test_cache_exact_keys_distinguish_close_points():
    cache = ResultCache(capacity=8)
    p = np.array([0.1, 0.2])
    assert cache.make_key("knn", 1, p) == cache.make_key("knn", 1, p.copy())
    assert cache.make_key("knn", 1, p) != cache.make_key("knn", 1, p + 1e-15)
    assert cache.make_key("knn", 1, p) != cache.make_key("knn", 2, p)
    assert cache.make_key("knn", 1, p) != cache.make_key("covering", 1, p)


def test_cache_quantized_keys_coalesce():
    cache = ResultCache(capacity=8, decimals=3)
    p = np.array([0.1, 0.2])
    assert cache.make_key("knn", 1, p) == cache.make_key("knn", 1, p + 1e-9)
    assert cache.make_key("knn", 1, p) != cache.make_key("knn", 1, p + 1e-2)
    # -0.0 and +0.0 quantize to the same key
    assert cache.make_key("knn", 1, np.array([0.0, -1e-9])) == cache.make_key(
        "knn", 1, np.array([0.0, 0.0])
    )


def test_cache_zero_capacity_disables_storage():
    cache = ResultCache(capacity=0)
    key = cache.make_key("knn", 1, np.array([0.5, 0.5]))
    cache.put(key, "A")
    assert cache.get(key) is None
    assert len(cache) == 0


# -- Batcher --------------------------------------------------------------


def test_batcher_tickets_match_reference(index, queries):
    ref_idx, ref_sq = index.execute("knn", queries)
    batcher = Batcher(index, kind="knn", max_batch=64)
    tickets = batcher.submit_many(queries)
    batcher.flush()
    for i, t in enumerate(tickets):
        assert t.done and not t.cached
        assert np.array_equal(t.value[0], ref_idx[i])
        assert np.array_equal(t.value[1], ref_sq[i])
        assert t.latency_s >= 0


def test_batcher_flush_on_empty_queue_is_noop(index):
    batcher = Batcher(index)
    assert batcher.pending == 0
    assert batcher.flush() == 0
    assert batcher.stats.batches == 0


def test_batcher_submit_many_larger_than_max_batch(index, queries):
    """A 300-request burst through max_batch=32 executes in 32-sized
    chunks as the queue fills, with identical per-ticket answers."""
    ref_idx, _ = index.execute("knn", queries)
    batcher = Batcher(index, kind="knn", max_batch=32)
    tickets = batcher.submit_many(queries)
    # all but the sub-batch tail executed by the time submit_many returns
    assert batcher.pending == queries.shape[0] % 32
    assert batcher.stats.batches == queries.shape[0] // 32
    batcher.flush()
    assert all(t.done for t in tickets)
    for i in (0, 31, 32, 170, 299):
        assert np.array_equal(tickets[i].value[0], ref_idx[i])


def test_batcher_duplicate_points_hit_cache(index, queries):
    ref_idx, ref_sq = index.execute("knn", queries[:8])
    batcher = Batcher(index, kind="knn", max_batch=4, cache=ResultCache(64))
    first = batcher.submit_many(queries[:8])
    batcher.flush()
    again = batcher.submit_many(queries[:8])  # identical points, cache-hot
    assert all(t.done and t.cached for t in again)
    assert batcher.stats.cache_hits == 8
    assert batcher.stats.cache_misses == 8
    assert batcher.stats.served == 8  # hits never re-executed
    for i, t in enumerate(again):
        assert np.array_equal(t.value[0], first[i].value[0])
        assert np.array_equal(t.value[0], ref_idx[i])
        assert np.array_equal(t.value[1], ref_sq[i])


def test_batcher_cache_hits_identical_for_covering(index, queries):
    batcher = Batcher(index, kind="covering", max_batch=16, cache=ResultCache(64))
    cold = batcher.submit_many(queries[:16])
    batcher.flush()
    warm = batcher.submit_many(queries[:16])
    for i, t in enumerate(warm):
        assert t.cached
        assert np.array_equal(t.value, cold[i].value)
        assert np.array_equal(t.value, index.structure.query(queries[i]))


def test_batcher_max_wait_flush_via_poll(index, queries):
    now = [0.0]
    batcher = Batcher(
        index, max_batch=1000, max_wait_ms=50.0, clock=lambda: now[0]
    )
    t = batcher.submit(queries[0])
    assert batcher.poll() == 0 and not t.done  # too fresh
    now[0] = 0.049
    assert batcher.poll() == 0 and not t.done
    now[0] = 0.051
    assert batcher.poll() == 1 and t.done
    assert batcher.pending == 0


def test_batcher_unfulfilled_ticket_raises(index, queries):
    batcher = Batcher(index, max_batch=1000)
    t = batcher.submit(queries[0])
    with pytest.raises(RuntimeError, match="not fulfilled"):
        t.value
    with pytest.raises(RuntimeError, match="not fulfilled"):
        t.latency_s


def test_batcher_close_flushes_and_rejects(index, queries):
    batcher = Batcher(index, max_batch=1000)
    t = batcher.submit(queries[0])
    batcher.close()
    assert t.done
    with pytest.raises(RuntimeError, match="closed"):
        batcher.submit(queries[1])
    batcher.close()  # idempotent


def test_batcher_close_without_flush_drops_queue(index, queries):
    batcher = Batcher(index, max_batch=1000)
    t = batcher.submit(queries[0])
    batcher.close(flush=False)
    assert not t.done and batcher.pending == 0


def test_batcher_validates_inputs(index, queries):
    with pytest.raises(ValueError, match="max_batch"):
        Batcher(index, max_batch=0)
    with pytest.raises(ValueError, match="max_wait_ms"):
        Batcher(index, max_wait_ms=-1.0)
    with pytest.raises(ValueError, match="kind"):
        Batcher(index, kind="nearest")
    batcher = Batcher(index)
    with pytest.raises(ValueError, match="point"):
        batcher.submit(queries[:2])  # a (2, d) array is not one point


def test_batcher_metrics_and_spans(index, queries):
    machine = Machine()
    machine.enable_tracing()
    batcher = Batcher(
        index, kind="knn", max_batch=50, cache=ResultCache(256), machine=machine
    )
    with machine.span("serve.session"):
        batcher.submit_many(queries[:100])
        batcher.flush()
        batcher.submit(queries[0])  # cache hit
    reg = machine.metrics
    assert reg.counter("serve.requests") == 101
    assert reg.counter("serve.served") == 100
    assert reg.counter("serve.batches") == 2
    assert reg.counter("serve.cache_hits") == 1
    assert reg.gauge("serve.queue_depth") == 0
    assert reg.gauge("serve.qps") > 0
    batch_spans = [s for s in machine.tracer.root.children if s.name == "serve.batch"]
    assert len(batch_spans) == 2
    assert [s.attrs["n"] for s in batch_spans] == [50, 50]
    # serving is passive on the simulated ledger
    assert machine.total.depth == 0 and machine.total.work == 0


def test_api_serve_end_to_end(queries):
    pts = repro.workloads.uniform_cube(600, 2, seed=9)
    with repro.api.serve(pts, k=2, max_batch=64, seed=4) as batcher:
        tickets = batcher.submit_many(queries[:100])
        batcher.flush()
        idx, sq = batcher.index.execute("knn", queries[:100], k=2)
        for i, t in enumerate(tickets):
            assert np.array_equal(t.value[0], idx[i])
            assert np.array_equal(t.value[1], sq[i])


def test_queue_depth_sampled_at_flush(queries):
    """Satellite of ISSUE 8: the ``serve.queue_depth`` gauge is sampled at
    batch-flush time (the depth that triggered execution), and every
    flush appends to the ``serve.queue_depth_flush`` series."""
    machine = Machine()
    pts = repro.workloads.uniform_cube(400, 2, seed=21)
    index = ServingIndex.build(pts, 1, machine=machine, seed=22)
    batcher = Batcher(index, kind="knn", k=1, max_batch=16, machine=machine)
    for row in queries[:16]:  # fills the batch -> auto-flush at depth 16
        batcher.submit(row)
    for row in queries[16:23]:  # partial batch -> explicit flush at depth 7
        batcher.submit(row)
    batcher.flush()
    assert machine.metrics.samples("serve.queue_depth_flush") == [16, 7]
    # the live gauge returns to 0 once the queue has executed...
    assert batcher.stats.queue_depth == 0
    # ...and an empty flush records nothing
    batcher.flush()
    assert machine.metrics.samples("serve.queue_depth_flush") == [16, 7]
    batcher.close()
    # both sinks: the series reaches the Prometheus exposition too
    text = machine.metrics.to_prometheus()
    assert 'repro_serve_queue_depth_flush_count{key="serve.queue_depth_flush"} 2.0' in text
    assert 'repro_serve_queue_depth_flush_max{key="serve.queue_depth_flush"} 16.0' in text
