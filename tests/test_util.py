"""RNG plumbing and validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util import as_generator, check_in_range, check_positive_int, check_probability, spawn


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = as_generator(7).random(3)
        b = as_generator(7).random(3)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_seed_sequence(self):
        ss = np.random.SeedSequence(5)
        assert isinstance(as_generator(ss), np.random.Generator)


class TestSpawn:
    def test_children_independent(self):
        rng = np.random.default_rng(1)
        kids = spawn(rng, 3)
        assert len(kids) == 3
        streams = [k.random(4).tolist() for k in kids]
        assert streams[0] != streams[1] != streams[2]

    def test_zero_children(self):
        assert spawn(np.random.default_rng(0), 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(np.random.default_rng(0), -1)


class TestValidation:
    def test_positive_int(self):
        assert check_positive_int(3, "x") == 3
        with pytest.raises(ValueError):
            check_positive_int(0, "x")
        with pytest.raises(TypeError):
            check_positive_int(2.5, "x")  # type: ignore[arg-type]
        with pytest.raises(TypeError):
            check_positive_int(True, "x")  # bools are not counts

    def test_positive_int_minimum(self):
        assert check_positive_int(5, "x", minimum=5) == 5
        with pytest.raises(ValueError):
            check_positive_int(4, "x", minimum=5)

    def test_probability(self):
        assert check_probability(0.5, "p") == 0.5
        assert check_probability(0, "p") == 0.0
        with pytest.raises(ValueError):
            check_probability(1.5, "p")

    def test_in_range(self):
        assert check_in_range(2.0, "v", 1.0, 3.0) == 2.0
        with pytest.raises(ValueError):
            check_in_range(1.0, "v", 1.0, 3.0, open_ends=True)
        with pytest.raises(ValueError):
            check_in_range(5.0, "v", 1.0, 3.0)
