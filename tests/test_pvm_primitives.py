"""Primitive vector operations: numpy-reference semantics + cost charges."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.pvm import primitives as P
from repro.pvm.cost import Cost
from repro.pvm.machine import Machine

float_vectors = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=200),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)
int_vectors = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(min_value=1, max_value=200),
    elements=st.integers(min_value=-1000, max_value=1000),
)


class TestScan:
    @given(float_vectors)
    def test_exclusive_add_scan_matches_cumsum(self, x):
        m = Machine()
        out = P.scan(m, x)
        expected = np.concatenate(([0.0], np.cumsum(x)[:-1]))
        np.testing.assert_allclose(out, expected)

    @given(float_vectors)
    def test_inclusive_add_scan_matches_cumsum(self, x):
        out = P.scan(Machine(), x, inclusive=True)
        np.testing.assert_allclose(out, np.cumsum(x))

    @given(int_vectors)
    def test_max_scan(self, x):
        out = P.scan(Machine(), x, op="max", inclusive=True)
        np.testing.assert_array_equal(out, np.maximum.accumulate(x))

    @given(int_vectors)
    def test_min_scan_exclusive_identity(self, x):
        out = P.scan(Machine(), x, op="min")
        assert out[0] == np.iinfo(np.int64).max

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            P.scan(Machine(), np.arange(4), op="xor")

    def test_scan_charges_scan_cost(self):
        m = Machine(scan="log")
        P.scan(m, np.arange(1024, dtype=float))
        assert m.total == Cost(10, 1024)


class TestSegmentedScan:
    def test_restarts_at_boundaries(self):
        x = np.array([1.0, 2, 3, 4, 5, 6])
        seg = np.array([0, 0, 1, 1, 1, 2])
        out = P.segmented_scan(Machine(), x, seg, inclusive=True)
        np.testing.assert_allclose(out, [1, 3, 3, 7, 12, 6])

    def test_exclusive_variant(self):
        x = np.array([1.0, 2, 3, 4])
        seg = np.array([0, 0, 1, 1])
        out = P.segmented_scan(Machine(), x, seg)
        np.testing.assert_allclose(out, [0, 1, 0, 3])

    def test_single_segment_equals_plain_scan(self):
        x = np.arange(10, dtype=float)
        seg = np.zeros(10, dtype=int)
        np.testing.assert_allclose(
            P.segmented_scan(Machine(), x, seg, inclusive=True), np.cumsum(x)
        )

    def test_decreasing_ids_rejected(self):
        with pytest.raises(ValueError):
            P.segmented_scan(Machine(), np.ones(3), np.array([1, 0, 0]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            P.segmented_scan(Machine(), np.ones(3), np.zeros(4, dtype=int))

    @given(st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=10))
    def test_matches_per_segment_cumsum(self, seg_sizes):
        rng = np.random.default_rng(0)
        x = rng.random(sum(seg_sizes))
        seg = np.repeat(np.arange(len(seg_sizes)), seg_sizes)
        out = P.segmented_scan(Machine(), x, seg, inclusive=True)
        expected = np.concatenate(
            [np.cumsum(chunk) for chunk in np.split(x, np.cumsum(seg_sizes)[:-1])]
        )
        np.testing.assert_allclose(out, expected)


class TestReduce:
    @given(float_vectors)
    def test_add_reduce(self, x):
        assert P.reduce(Machine(), x) == pytest.approx(x.sum(), rel=1e-9, abs=1e-9)

    @given(float_vectors)
    def test_max_reduce(self, x):
        assert P.reduce(Machine(), x, op="max") == x.max()

    def test_empty_add_reduce_is_zero(self):
        assert P.reduce(Machine(), np.empty(0)) == 0

    def test_empty_max_reduce_rejected(self):
        with pytest.raises(ValueError):
            P.reduce(Machine(), np.empty(0), op="max")

    def test_segmented_reduce(self):
        x = np.array([1.0, 2, 3, 4, 5])
        seg = np.array([0, 0, 3, 3, 7])
        np.testing.assert_allclose(P.segmented_reduce(Machine(), x, seg), [3, 7, 5])


class TestPackSplit:
    @given(float_vectors)
    def test_pack_matches_boolean_indexing(self, x):
        mask = x > 0
        np.testing.assert_array_equal(P.pack(Machine(), x, mask), x[mask])

    @given(float_vectors)
    def test_split_partitions_stably(self, x):
        flags = x > 0
        lo, hi = P.split(Machine(), x, flags)
        np.testing.assert_array_equal(lo, x[~flags])
        np.testing.assert_array_equal(hi, x[flags])
        assert lo.shape[0] + hi.shape[0] == x.shape[0]

    def test_pack_charges_scan_plus_permute(self):
        m = Machine()
        P.pack(m, np.arange(100), np.arange(100) % 2 == 0)
        assert m.total == Cost(2, 200)

    def test_enumerate_mask(self):
        mask = np.array([True, False, True, True])
        np.testing.assert_array_equal(P.enumerate_mask(Machine(), mask), [0, 2, 3])


class TestDataMovement:
    @given(st.integers(min_value=1, max_value=100))
    def test_permute_scatter_inverse_of_gather(self, n):
        rng = np.random.default_rng(n)
        x = rng.random(n)
        perm = rng.permutation(n)
        sent = P.permute(Machine(), x, perm)
        back = P.gather(Machine(), sent, perm)
        np.testing.assert_array_equal(back, x)

    def test_gather_semantics(self):
        x = np.array([10.0, 20, 30])
        np.testing.assert_array_equal(P.gather(Machine(), x, np.array([2, 0, 2])), [30, 10, 30])

    def test_scatter_in_place(self):
        target = np.zeros(4)
        P.scatter(Machine(), target, np.array([1, 3]), np.array([5.0, 7.0]))
        np.testing.assert_array_equal(target, [0, 5, 0, 7])

    def test_distribute(self):
        m = Machine()
        out = P.distribute(m, 3.5, 7)
        np.testing.assert_array_equal(out, np.full(7, 3.5))
        assert m.total == Cost(1, 7)

    def test_pairwise_min_index(self):
        assert P.pairwise_min_index(Machine(), np.array([3.0, 1.0, 2.0])) == 1

    def test_pairwise_min_index_empty_rejected(self):
        with pytest.raises(ValueError):
            P.pairwise_min_index(Machine(), np.empty(0))


class TestEwise:
    def test_passes_output_through_and_charges(self):
        m = Machine()
        out = P.ewise(m, np.arange(10), steps=3.0)
        assert out.shape == (10,)
        assert m.total == Cost(3, 30)
