"""Multi-index tenancy: named serving stacks, mutate/swap, metric merging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.online import MutableIndex
from repro.net import DEFAULT_TENANT, NetConfig, Tenant, TenantManager
from repro.obs.metrics import Metrics
from repro.workloads import uniform_cube


def _mutable(n=200, d=2, k=1, seed=0):
    return MutableIndex(uniform_cube(n, d, seed=seed), k, seed=seed + 1,
                        churn_threshold=0.5)


class TestTenant:
    def test_initial_state_and_describe(self):
        tenant = Tenant("default", _mutable(), config=NetConfig())
        try:
            assert tenant.version == 0 and tenant.d == 2 and tenant.k == 1
            desc = tenant.describe()
            assert desc["name"] == "default" and desc["n"] == 200
            assert desc["versions_retained"] == [0]
            assert desc["pending_mutations"] == 0
        finally:
            tenant.close()

    def test_mutate_commit_publishes_and_swaps(self):
        tenant = Tenant("default", _mutable(), config=NetConfig())
        try:
            rng = np.random.default_rng(5)
            info, flushed = tenant.mutate(rng.random((3, 2)), [0, 1],
                                          commit=True)
            assert info is not None and info.version == 1
            assert tenant.version == 1
            assert tenant.registry.versions() == [0, 1]
            assert flushed == 0  # nothing was queued
        finally:
            tenant.close()

    def test_mutate_without_commit_only_buffers(self):
        tenant = Tenant("default", _mutable(), config=NetConfig())
        try:
            info, flushed = tenant.mutate(np.random.default_rng(6).random((2, 2)))
            assert info is None and flushed == 0
            assert tenant.version == 0
            assert tenant.describe()["pending_mutations"] == 2
        finally:
            tenant.close()

    def test_noop_commit_does_not_swap(self):
        tenant = Tenant("default", _mutable(), config=NetConfig())
        try:
            info, flushed = tenant.mutate(commit=True)
            assert info is not None and info.noop
            assert tenant.version == 0
            assert tenant.registry.versions() == [0]
        finally:
            tenant.close()

    def test_swap_flushes_queued_requests_against_old_version(self):
        tenant = Tenant("default", _mutable(), config=NetConfig())
        try:
            old = tenant.batcher.index
            probes = uniform_cube(5, 2, seed=9)
            tickets = [tenant.batcher.submit(row) for row in probes]
            _, flushed = tenant.mutate(
                np.random.default_rng(7).random((2, 2)), commit=True)
            assert flushed == 5
            want_idx, want_sq = old.execute("knn", probes, 1)
            for i, t in enumerate(tickets):
                assert t.done
                np.testing.assert_array_equal(t.value[0], want_idx[i])
                np.testing.assert_array_equal(t.value[1], want_sq[i])
        finally:
            tenant.close()

    def test_execute_direct_matches_dedicated_batcher(self):
        tenant = Tenant("default", _mutable(k=2), config=NetConfig())
        try:
            probes = uniform_cube(6, 2, seed=11)
            got = tenant.execute_direct("knn", probes, 4)  # k override
            want_idx, want_sq = tenant.batcher.index.execute("knn", probes, 4)
            for i, (idx, sq) in enumerate(got):
                np.testing.assert_array_equal(idx, want_idx[i])
                np.testing.assert_array_equal(sq, want_sq[i])
        finally:
            tenant.close()

    def test_closed_tenant_rejects_mutations(self):
        tenant = Tenant("default", _mutable(), config=NetConfig())
        tenant.close()
        tenant.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            tenant.mutate(commit=True)


class TestTenantManager:
    def test_add_get_and_default(self):
        mgr = TenantManager(config=NetConfig())
        try:
            mgr.add(DEFAULT_TENANT, _mutable(seed=1))
            mgr.add("staging", _mutable(seed=2))
            assert len(mgr) == 2 and "staging" in mgr
            assert mgr.names() == ["default", "staging"]
            assert mgr.get() is mgr.get(DEFAULT_TENANT)
            assert mgr.get("staging").name == "staging"
        finally:
            mgr.close_all()

    def test_duplicate_and_invalid_names_rejected(self):
        mgr = TenantManager(config=NetConfig())
        try:
            mgr.add("a", _mutable(seed=3))
            with pytest.raises(ValueError, match="already exists"):
                mgr.add("a", _mutable(seed=4))
            with pytest.raises(ValueError, match="invalid"):
                mgr.add("", _mutable(seed=5))
            with pytest.raises(ValueError, match="invalid"):
                mgr.add("a/b", _mutable(seed=6))
        finally:
            mgr.close_all()

    def test_unknown_tenant_raises_keyerror_listing_names(self):
        mgr = TenantManager(config=NetConfig())
        try:
            mgr.add(DEFAULT_TENANT, _mutable(seed=7))
            with pytest.raises(KeyError, match="unknown index 'nope'"):
                mgr.get("nope")
        finally:
            mgr.close_all()

    def test_collect_metrics_prefixes_non_default_tenants(self):
        mgr = TenantManager(config=NetConfig())
        try:
            mgr.add(DEFAULT_TENANT, _mutable(seed=8))
            mgr.add("b", _mutable(seed=9))
            for name in (None, "b"):
                tenant = mgr.get(name)
                tenant.batcher.submit(np.array([0.5, 0.5]))
                tenant.batcher.flush()
            server_metrics = Metrics()
            server_metrics.inc("net.requests", 2)
            merged = mgr.collect_metrics(server_metrics)
            # net.* as-is, default tenant unprefixed, others prefixed
            assert merged.counters["net.requests"] == 2
            assert merged.counters["serve.served"] == 1
            assert merged.counters["tenant.b.serve.served"] == 1
        finally:
            mgr.close_all()
