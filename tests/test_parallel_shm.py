"""Shared-memory array lifecycle: create, attach, destroy, no leaks."""

from __future__ import annotations

import glob

import numpy as np
import pytest

from repro.parallel import SharedArray, ShmSpec
from repro.parallel.shm import SHM_PREFIX, attach


def _shm_entries():
    return glob.glob(f"/dev/shm/{SHM_PREFIX}*")


class TestSharedArray:
    def test_create_from_roundtrip(self):
        src = np.arange(12, dtype=np.float64).reshape(3, 4)
        sa = SharedArray.create_from(src)
        try:
            assert sa.array.shape == (3, 4)
            assert sa.array.dtype == np.float64
            np.testing.assert_array_equal(sa.array, src)
            # the block holds a copy, not a view of the source
            src[0, 0] = -1.0
            assert sa.array[0, 0] == 0.0
        finally:
            sa.destroy()

    def test_spec_is_picklable_handle(self):
        sa = SharedArray.create_from(np.ones((5,), dtype=np.int64))
        try:
            spec = sa.spec
            assert isinstance(spec, ShmSpec)
            assert spec.name.startswith(SHM_PREFIX)
            assert spec.shape == (5,)
            assert np.dtype(spec.dtype) == np.int64
        finally:
            sa.destroy()

    def test_attach_sees_master_writes(self):
        sa = SharedArray.create(shape=(4,), dtype=np.int64)
        try:
            sa.array[:] = [1, 2, 3, 4]
            shm, view = attach(sa.spec)
            try:
                np.testing.assert_array_equal(view, [1, 2, 3, 4])
                view[0] = 99  # and the other direction
                assert sa.array[0] == 99
            finally:
                del view
                shm.close()
        finally:
            sa.destroy()

    def test_zero_length_array(self):
        sa = SharedArray.create(shape=(0, 3), dtype=np.float64)
        try:
            assert sa.array.shape == (0, 3)
        finally:
            sa.destroy()

    def test_destroy_removes_entry_and_is_idempotent(self):
        sa = SharedArray.create(shape=(8,), dtype=np.float64)
        name = sa.spec.name
        assert any(name in p for p in _shm_entries())
        sa.destroy()
        assert not any(name in p for p in _shm_entries())
        sa.destroy()  # second call must not raise

    def test_attach_missing_block_raises(self):
        spec = ShmSpec(name=SHM_PREFIX + "does_not_exist", shape=(1,), dtype="<f8")
        with pytest.raises(FileNotFoundError):
            attach(spec)
