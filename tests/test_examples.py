"""The examples must actually run — they are executable documentation."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def run_example(name: str, timeout: float = 240.0) -> str:
    path = os.path.join(EXAMPLES, name)
    proc = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=timeout,
        check=False,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stdout}\n{proc.stderr}"
    return proc.stdout


class TestFastExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "parallel depth" in out
        assert "punts" in out

    def test_separator_anatomy(self):
        out = run_example("separator_anatomy.py")
        assert "centerpoint" in out
        assert "median hyperplane" in out

    def test_adversarial_cuts(self):
        out = run_example("adversarial_cuts.py")
        assert "slab pairs" in out
        assert "exact" in out


@pytest.mark.slow
class TestSlowExamples:
    def test_parallel_scaling(self):
        out = run_example("parallel_scaling.py", timeout=600)
        assert "Brent-scheduled" in out

    def test_point_location_service(self):
        out = run_example("point_location_service.py", timeout=600)
        assert "identical" in out

    def test_nested_dissection(self):
        out = run_example("nested_dissection.py", timeout=600)
        assert "nested dissection" in out
