"""Approximate centerpoints: depth guarantees in practice."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.centerpoints import (
    coordinate_median,
    iterated_radon_centerpoint,
    tukey_depth_estimate,
)
from repro.geometry.stereographic import lift
from repro.workloads import annulus, clustered, uniform_cube


class TestCoordinateMedian:
    def test_matches_numpy(self):
        pts = np.random.default_rng(0).random((101, 3))
        np.testing.assert_allclose(coordinate_median(pts), np.median(pts, axis=0))


class TestIteratedRadon:
    def test_small_input_returns_mean(self):
        pts = np.array([[0.0, 0.0], [2.0, 0.0]])
        rng = np.random.default_rng(0)
        np.testing.assert_allclose(iterated_radon_centerpoint(pts, rng), [1.0, 0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            iterated_radon_centerpoint(np.zeros((0, 2)), np.random.default_rng(0))

    def test_wrong_rank_rejected(self):
        with pytest.raises(ValueError):
            iterated_radon_centerpoint(np.zeros(5), np.random.default_rng(0))

    @pytest.mark.parametrize("workload", [uniform_cube, clustered, annulus])
    @pytest.mark.parametrize("d", [2, 3])
    def test_depth_on_workloads(self, workload, d):
        """Measured Tukey depth comfortably above the n/(d+2)^2 floor."""
        n = 600
        pts = workload(n, d, 11)
        rng = np.random.default_rng(1)
        z = iterated_radon_centerpoint(pts, rng)
        depth = tukey_depth_estimate(pts, z, rng, directions=400)
        assert depth >= n // ((d + 2) ** 2)

    def test_depth_on_lifted_sphere_points(self):
        """The MTTV use case: centerpoint of lifted points in R^{d+1}."""
        pts = uniform_cube(800, 2, 3)
        y = lift(pts)
        rng = np.random.default_rng(2)
        z = iterated_radon_centerpoint(y, rng)
        assert np.linalg.norm(z) < 1.0  # strictly inside the ball
        depth = tukey_depth_estimate(y, z, rng, directions=400)
        assert depth >= 800 // 25

    def test_rounds_cap_respected(self):
        pts = np.random.default_rng(3).random((100, 2))
        z = iterated_radon_centerpoint(pts, np.random.default_rng(4), rounds=1)
        assert z.shape == (2,)

    def test_deterministic_given_rng_state(self):
        pts = np.random.default_rng(5).random((100, 2))
        z1 = iterated_radon_centerpoint(pts, np.random.default_rng(42))
        z2 = iterated_radon_centerpoint(pts, np.random.default_rng(42))
        np.testing.assert_array_equal(z1, z2)


class TestTukeyDepthEstimate:
    def test_center_of_symmetric_cloud_has_high_depth(self):
        rng = np.random.default_rng(6)
        pts = rng.standard_normal((500, 2))
        depth = tukey_depth_estimate(pts, np.zeros(2), rng, directions=300)
        assert depth > 500 * 0.4

    def test_outlier_has_zero_depth(self):
        rng = np.random.default_rng(7)
        pts = rng.standard_normal((200, 2))
        depth = tukey_depth_estimate(pts, np.array([100.0, 100.0]), rng, directions=100)
        assert depth == 0

    def test_invalid_direction_count(self):
        with pytest.raises(ValueError):
            tukey_depth_estimate(np.zeros((3, 2)), np.zeros(2), np.random.default_rng(0), directions=0)

    def test_upper_bounds_true_depth_on_line(self):
        # colinear points: true depth of the median is ceil(n/2)
        pts = np.linspace(0, 1, 21)[:, None] * np.ones((1, 2))
        rng = np.random.default_rng(8)
        depth = tukey_depth_estimate(pts, pts[10], rng, directions=500)
        assert depth <= 11
