"""Separator quality measures: splits, intersection numbers, targets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.balls import BallSystem
from repro.geometry.spheres import Hyperplane, Sphere
from repro.separators.quality import (
    ball_split,
    default_delta,
    is_good_point_split,
    point_split,
)


class TestDefaultDelta:
    def test_paper_values(self):
        assert default_delta(2, 0.0) == pytest.approx(3 / 4)
        assert default_delta(3, 0.0) == pytest.approx(4 / 5)

    def test_epsilon_added(self):
        assert default_delta(2, 0.05) == pytest.approx(0.8)

    def test_epsilon_range_enforced(self):
        with pytest.raises(ValueError):
            default_delta(2, 0.3)  # >= 1/(d+2) = 0.25
        with pytest.raises(ValueError):
            default_delta(2, -0.1)

    def test_dimension_validated(self):
        with pytest.raises(ValueError):
            default_delta(0)


class TestPointSplit:
    def test_counts(self):
        s = Sphere(np.zeros(2), 1.0)
        pts = np.array([[0.0, 0.0], [0.5, 0.0], [2.0, 0.0], [3.0, 0.0]])
        rep = point_split(s, pts)
        assert rep.interior_points == 2
        assert rep.exterior_points == 2
        assert rep.split_ratio == 0.5
        assert rep.ball_counts is None

    def test_empty(self):
        rep = point_split(Sphere(np.zeros(2), 1.0), np.zeros((0, 2)))
        assert rep.split_ratio == 0.0

    def test_lopsided_ratio(self):
        s = Sphere(np.zeros(2), 10.0)
        pts = np.random.default_rng(0).random((10, 2))
        rep = point_split(s, pts)
        assert rep.split_ratio == 1.0


class TestBallSplit:
    def test_intersection_number_surfaces(self):
        s = Sphere(np.zeros(2), 2.0)
        balls = BallSystem(
            np.array([[0.0, 0.0], [5.0, 0.0], [2.0, 0.0]]),
            np.array([1.0, 1.0, 1.0]),
        )
        rep = ball_split(s, balls)
        assert rep.intersection_number == 1
        assert rep.ball_counts.interior == 1
        assert rep.ball_counts.exterior == 1
        assert rep.ball_counts.total == 3

    def test_works_for_hyperplane(self):
        h = Hyperplane(np.array([1.0, 0.0]), 0.0)
        balls = BallSystem(np.array([[-3.0, 0.0], [0.1, 0.0]]), np.array([1.0, 1.0]))
        rep = ball_split(h, balls)
        assert rep.intersection_number == 1


class TestIsGood:
    def test_balanced_accepted(self):
        s = Sphere(np.array([0.5, 0.5]), 0.4)
        pts = np.random.default_rng(1).random((200, 2))
        rep = point_split(s, pts)
        assert is_good_point_split(s, pts, delta=max(0.8, rep.split_ratio + 0.01))

    def test_empty_side_rejected(self):
        s = Sphere(np.zeros(2), 0.001)
        pts = np.random.default_rng(2).random((50, 2)) + 5
        assert not is_good_point_split(s, pts, delta=0.99)

    def test_single_point_rejected(self):
        s = Sphere(np.zeros(2), 1.0)
        assert not is_good_point_split(s, np.array([[0.0, 0.0]]), delta=0.9)

    def test_ratio_above_delta_rejected(self):
        s = Sphere(np.zeros(2), 1.0)
        pts = np.concatenate([np.zeros((9, 2)), np.full((1, 2), 5.0)])
        assert not is_good_point_split(s, pts, delta=0.8)
