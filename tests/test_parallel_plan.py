"""Shard planner: contiguity, coverage, balance and determinism.

The multiprocess engine's bit-identity contract needs exactly one thing
from the planner — contiguous shards in segment order — and its load
balance only affects wall-clock.  These tests pin the contract properties
for arbitrary weight vectors.
"""

from __future__ import annotations

import pytest

from repro.parallel import Shard, plan_shards
from repro.parallel.plan import (
    SUBTREE_FACTOR,
    SUBTREE_TARGET_ENV,
    build_weight,
    correct_weight,
    plan_subtree_assignment,
    subtree_target,
    subtree_weight,
)


def _check_partition(shards, n, workers):
    """Shards tile [0, n) contiguously, nonempty, at most ``workers``."""
    assert 1 <= len(shards) <= workers
    assert shards[0].start == 0
    assert shards[-1].stop == n
    for a, b in zip(shards, shards[1:]):
        assert a.stop == b.start
    for s in shards:
        assert len(s) >= 1


class TestPlanShards:
    def test_empty_level(self):
        assert plan_shards([], 4) == []

    def test_single_worker_single_shard(self):
        assert plan_shards([1.0, 2.0, 3.0], 1) == [Shard(0, 3)]

    def test_single_segment(self):
        assert plan_shards([5.0], 8) == [Shard(0, 1)]

    @pytest.mark.parametrize("n", [1, 2, 3, 7, 16, 100])
    @pytest.mark.parametrize("workers", [1, 2, 3, 4, 9])
    def test_partition_properties(self, n, workers):
        weights = [float((i * 7919) % 13 + 1) for i in range(n)]
        shards = plan_shards(weights, workers)
        _check_partition(shards, n, workers)

    def test_fewer_segments_than_workers(self):
        shards = plan_shards([1.0, 1.0], 8)
        _check_partition(shards, 2, 8)
        assert len(shards) == 2

    def test_uniform_weights_balance(self):
        shards = plan_shards([1.0] * 100, 4)
        assert len(shards) == 4
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_heavy_head_does_not_starve_tail(self):
        # one huge segment up front must not swallow the whole level
        shards = plan_shards([1000.0] + [1.0] * 9, 4)
        _check_partition(shards, 10, 4)
        assert len(shards) >= 2
        assert len(shards[0]) == 1

    def test_deterministic(self):
        weights = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        assert plan_shards(weights, 3) == plan_shards(weights, 3)

    def test_zero_weights_still_partition(self):
        shards = plan_shards([0.0] * 10, 3)
        _check_partition(shards, 10, 3)


class TestWeights:
    def test_build_weight_leaf_quadratic(self):
        assert build_weight(10, True, 32) == 100.0
        assert build_weight(20, True, 32) == 400.0

    def test_build_weight_active_near_linear(self):
        small, big = build_weight(100, False, 32), build_weight(200, False, 32)
        assert big - small == pytest.approx(400.0)

    def test_correct_weight_monotone(self):
        assert correct_weight(10) < correct_weight(100) < correct_weight(1000)


class TestSubtreeTarget:
    def test_scales_with_workers(self):
        assert subtree_target(1) == SUBTREE_FACTOR
        assert subtree_target(4) == 4 * SUBTREE_FACTOR
        # the 2-4x band the coarse design calls for
        assert 2 <= SUBTREE_FACTOR <= 4

    def test_floor_is_one(self):
        assert subtree_target(0) >= 1
        assert subtree_target(-3) >= 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(SUBTREE_TARGET_ENV, "7")
        assert subtree_target(1) == 7
        assert subtree_target(16) == 7
        monkeypatch.setenv(SUBTREE_TARGET_ENV, "0")
        assert subtree_target(4) == 1  # clamped to the minimum


class TestSubtreeWeight:
    def test_monotone_in_size(self):
        weights = [subtree_weight(m, 64) for m in (1, 64, 500, 5000, 50000)]
        assert weights == sorted(weights)
        assert all(w > 0 for w in weights)

    def test_zero_and_tiny_sizes_are_safe(self):
        # zero-point shards must not produce NaN/negative weights
        assert subtree_weight(0, 64) > 0.0
        assert subtree_weight(1, 1) > 0.0


class TestSubtreeAssignment:
    def test_empty(self):
        assert plan_subtree_assignment([], 4) == []

    def test_single_giant_subtree(self):
        assert plan_subtree_assignment([100.0], 4) == [0]

    def test_more_workers_than_subtrees(self):
        assignment = plan_subtree_assignment([5.0, 3.0], 8)
        assert len(assignment) == 2
        assert all(0 <= w < 8 for w in assignment)
        # distinct workers: no reason to stack two subtrees on one
        assert len(set(assignment)) == 2

    def test_zero_weight_subtrees_still_assigned(self):
        assignment = plan_subtree_assignment([0.0, 0.0, 0.0], 2)
        assert len(assignment) == 3
        assert all(0 <= w < 2 for w in assignment)

    def test_lpt_balances(self):
        # LPT on [5,3,3,2,1] with 2 workers: loads 7 vs 7
        assignment = plan_subtree_assignment([5.0, 3.0, 3.0, 2.0, 1.0], 2)
        loads = [0.0, 0.0]
        for value, worker in zip([5.0, 3.0, 3.0, 2.0, 1.0], assignment):
            loads[worker] += value
        assert max(loads) - min(loads) <= 1.0

    def test_deterministic(self):
        weights = [3.0, 3.0, 3.0, 1.0]
        assert plan_subtree_assignment(weights, 3) == plan_subtree_assignment(
            weights, 3
        )

    def test_single_worker(self):
        assert plan_subtree_assignment([1.0, 2.0, 3.0], 1) == [0, 0, 0]
