"""Shard planner: contiguity, coverage, balance and determinism.

The multiprocess engine's bit-identity contract needs exactly one thing
from the planner — contiguous shards in segment order — and its load
balance only affects wall-clock.  These tests pin the contract properties
for arbitrary weight vectors.
"""

from __future__ import annotations

import pytest

from repro.parallel import Shard, plan_shards
from repro.parallel.plan import build_weight, correct_weight


def _check_partition(shards, n, workers):
    """Shards tile [0, n) contiguously, nonempty, at most ``workers``."""
    assert 1 <= len(shards) <= workers
    assert shards[0].start == 0
    assert shards[-1].stop == n
    for a, b in zip(shards, shards[1:]):
        assert a.stop == b.start
    for s in shards:
        assert len(s) >= 1


class TestPlanShards:
    def test_empty_level(self):
        assert plan_shards([], 4) == []

    def test_single_worker_single_shard(self):
        assert plan_shards([1.0, 2.0, 3.0], 1) == [Shard(0, 3)]

    def test_single_segment(self):
        assert plan_shards([5.0], 8) == [Shard(0, 1)]

    @pytest.mark.parametrize("n", [1, 2, 3, 7, 16, 100])
    @pytest.mark.parametrize("workers", [1, 2, 3, 4, 9])
    def test_partition_properties(self, n, workers):
        weights = [float((i * 7919) % 13 + 1) for i in range(n)]
        shards = plan_shards(weights, workers)
        _check_partition(shards, n, workers)

    def test_fewer_segments_than_workers(self):
        shards = plan_shards([1.0, 1.0], 8)
        _check_partition(shards, 2, 8)
        assert len(shards) == 2

    def test_uniform_weights_balance(self):
        shards = plan_shards([1.0] * 100, 4)
        assert len(shards) == 4
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_heavy_head_does_not_starve_tail(self):
        # one huge segment up front must not swallow the whole level
        shards = plan_shards([1000.0] + [1.0] * 9, 4)
        _check_partition(shards, 10, 4)
        assert len(shards) >= 2
        assert len(shards[0]) == 1

    def test_deterministic(self):
        weights = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        assert plan_shards(weights, 3) == plan_shards(weights, 3)

    def test_zero_weights_still_partition(self):
        shards = plan_shards([0.0] * 10, 3)
        _check_partition(shards, 10, 3)


class TestWeights:
    def test_build_weight_leaf_quadratic(self):
        assert build_weight(10, True, 32) == 100.0
        assert build_weight(20, True, 32) == 400.0

    def test_build_weight_active_near_linear(self):
        small, big = build_weight(100, False, 32), build_weight(200, False, 32)
        assert big - small == pytest.approx(400.0)

    def test_correct_weight_monotone(self):
        assert correct_weight(10) < correct_weight(100) < correct_weight(1000)
