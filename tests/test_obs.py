"""Observability layer: spans, metrics, trace exports, ledger neutrality."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import all_knn, run_traced
from repro.core import FastDnCConfig, parallel_nearest_neighborhood, simple_parallel_dnc
from repro.obs import Metrics, MetricsView, Tracer, span_tree_from_dict, write_trace
from repro.pvm import Cost, Machine
from repro.workloads import uniform_cube

PUNTY = FastDnCConfig(active_factor=1e-9, active_slack=0.0, fc_depth=2.0)


class TestMetrics:
    def test_counters_gauges_series(self):
        m = Metrics()
        m.inc("a.x")
        m.inc("a.x", 2)
        m.set_gauge("a.g", 0.5)
        m.observe("a.s", 1)
        m.observe("a.s", 2)
        assert m.counter("a.x") == 3
        assert m.gauge("a.g") == 0.5
        assert m.samples("a.s") == [1, 2]
        d = m.to_dict()
        assert d["counters"]["a.x"] == 3
        assert d["gauges"]["a.g"] == 0.5
        assert d["series"]["a.s"] == [1, 2]

    def test_merge(self):
        a, b = Metrics(), Metrics()
        a.inc("n", 1)
        b.inc("n", 2)
        b.observe("s", 9)
        a.merge(b)
        assert a.counter("n") == 3
        assert a.samples("s") == [9]

    def test_view_round_trip(self):
        class V(MetricsView):
            _NS = "v"
            _COUNTER_FIELDS = ("hits",)
            _SERIES_FIELDS = ("sizes",)

        reg = Metrics()
        view = V(metrics=reg)
        view.hits += 2
        view.sizes.append((4, 1))
        assert reg.counter("v.hits") == 2
        assert reg.samples("v.sizes") == [(4, 1)]
        assert view.to_dict()["hits"] == 2

    def test_view_rejects_unknown_field(self):
        class V(MetricsView):
            _NS = "v"
            _COUNTER_FIELDS = ("hits",)

        with pytest.raises(TypeError):
            V(bogus=1)


class TestSpanRecording:
    def test_nesting_and_ordering_under_recursive_dnc(self):
        pts = uniform_cube(256, 2, 11)
        machine = Machine()
        tracer = machine.enable_tracing()
        parallel_nearest_neighborhood(pts, 2, machine=machine, seed=0)
        # every recursion node became a span; roots are the top-level calls
        assert tracer.span_count() > 10
        root = tracer.roots[0]
        assert root.name == "fast.node"
        assert root.attrs["level"] == 0
        assert root.attrs["m"] == 256
        for level, span in root.walk():
            if span.name == "fast.node":
                assert span.attrs["level"] >= 0
                for child in span.children:
                    if child.name == "fast.node":
                        # children are one recursion level deeper, on smaller sets
                        assert child.attrs["level"] == span.attrs["level"] + 1
                        assert child.attrs["m"] < span.attrs["m"]
                    # child spans never out-cost their parent
                    assert child.cost.depth <= span.cost.depth + 1e-9
                assert sum(c.cost.work for c in span.children) <= span.cost.work + 1e-9

    def test_simple_dnc_levels(self):
        pts = uniform_cube(200, 2, 3)
        machine = Machine()
        tracer = machine.enable_tracing()
        simple_parallel_dnc(pts, 1, machine=machine, seed=0)
        names = {span.name for root in tracer.roots for _, span in root.walk()}
        assert "simple.node" in names

    def test_disabled_tracing_records_nothing(self):
        pts = uniform_cube(128, 2, 5)
        machine = Machine()
        assert machine.tracer is None
        res = parallel_nearest_neighborhood(pts, 1, machine=machine, seed=0)
        assert res.cost.work > 0  # the run did happen
        with machine.span("anything", x=1) as handle:
            machine.charge(Cost(1.0, 1.0))
        assert handle is None

    def test_tracing_does_not_change_the_ledger(self):
        pts = uniform_cube(512, 2, 9)
        plain = Machine()
        parallel_nearest_neighborhood(pts, 2, machine=plain, seed=4)
        traced = Machine()
        traced.enable_tracing()
        parallel_nearest_neighborhood(pts, 2, machine=traced, seed=4)
        assert traced.total == plain.total
        # same for the simple algorithm
        plain2, traced2 = Machine(), Machine()
        traced2.enable_tracing()
        simple_parallel_dnc(pts, 2, machine=plain2, seed=4)
        simple_parallel_dnc(pts, 2, machine=traced2, seed=4)
        assert traced2.total == plain2.total

    def test_span_cost_exact_inside_parallel_blocks(self):
        machine = Machine()
        machine.enable_tracing()
        with machine.span("outer") as outer:
            with machine.parallel() as par:
                with par.branch():
                    machine.charge(Cost(3.0, 10.0))
                with par.branch():
                    machine.charge(Cost(5.0, 7.0))
        assert outer.cost == Cost(5.0, 17.0)
        assert machine.total == Cost(5.0, 17.0)


class TestLedgerEquality:
    @pytest.mark.parametrize("method", ["fast", "simple"])
    def test_run_traced_check_against(self, method):
        pts = uniform_cube(400, 2, 21)
        result, tracer = run_traced(pts, 2, method=method, seed=1)
        root = tracer.root
        assert root is not None and root.name == "run"
        assert root.cost == result.cost
        # per-level exclusive work is a lossless decomposition of the ledger
        levels = tracer.per_level_breakdown()
        assert sum(r["exclusive_work"] for r in levels) == pytest.approx(result.cost.work)
        tracer.check_against(result.cost)  # must not raise

    def test_check_against_detects_mismatch(self):
        machine = Machine()
        tracer = machine.enable_tracing()
        with machine.span("run"):
            machine.charge(Cost(1.0, 5.0))
        with pytest.raises(ValueError):
            tracer.check_against(Cost(1.0, 6.0))


class TestPuntPath:
    def test_metrics_survive_punt_path(self):
        pts = uniform_cube(600, 2, 33)
        machine = Machine()
        res = parallel_nearest_neighborhood(pts, 2, machine=machine, seed=2, config=PUNTY)
        assert res.stats.punts > 0
        assert machine.metrics.counter("fast.punts_marching") == res.stats.punts_marching
        assert machine.metrics.counter("fast.nodes") == res.stats.nodes
        assert machine.metrics.counter("fast.punt_corrections") > 0

    def test_spans_survive_punt_path(self):
        pts = uniform_cube(600, 2, 33)
        result, tracer = run_traced(pts, 2, seed=2, config=PUNTY)
        names = {span.name for root in tracer.roots for _, span in root.walk()}
        assert "correct.punt" in names and "correct.query" in names
        tracer.check_against(result.cost)


class TestExports:
    def _traced(self):
        pts = uniform_cube(300, 2, 17)
        result, tracer = run_traced(pts, 2, seed=7)
        return result, tracer

    def test_span_tree_json_round_trip(self):
        result, tracer = self._traced()
        data = json.loads(json.dumps(tracer.to_dict()))
        assert data["format"] == "repro-trace-v1"
        rebuilt = span_tree_from_dict(data["spans"][0])
        orig = tracer.roots[0]
        assert rebuilt.cost == orig.cost
        assert [s.name for _, s in rebuilt.walk()] == [s.name for _, s in orig.walk()]
        assert [s.attrs for _, s in rebuilt.walk()] == [s.attrs for _, s in orig.walk()]

    def test_chrome_trace_shape(self):
        _, tracer = self._traced()
        chrome = tracer.to_chrome_trace(extra={"note": "x"})
        assert chrome["displayTimeUnit"] == "ms"
        slices = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in chrome["traceEvents"] if e["ph"] == "M"]
        assert len(slices) == tracer.span_count()
        # a serial trace has exactly the master lane, labelled by metadata
        assert [m["args"]["name"] for m in meta] == ["master"]
        ev = slices[0]
        assert "depth" in ev["args"] and "work" in ev["args"]
        assert chrome["otherData"]["note"] == "x"

    def test_write_trace_file(self, tmp_path):
        result, tracer = self._traced()
        path = tmp_path / "trace.json"
        write_trace(str(path), tracer, total=result.cost,
                    metrics=result.machine.metrics.to_dict(), meta={"k": 2})
        data = json.loads(path.read_text())
        assert data["otherData"]["total"]["work"] == result.cost.work
        assert data["otherData"]["k"] == 2
        assert "counters" in data["otherData"]["metrics"]
        assert sum(r["exclusive_work"] for r in data["levels"]) == pytest.approx(result.cost.work)

    def test_flame_summary_mentions_phases(self):
        _, tracer = self._traced()
        text = tracer.flame_summary()
        assert "run" in text and "fast.node" in text


class TestFacade:
    @pytest.mark.parametrize("method", ["fast", "simple", "query", "brute"])
    def test_all_methods_agree_with_brute(self, method):
        pts = uniform_cube(150, 2, 13)
        res = all_knn(pts, 2, method=method, seed=0)
        ref = all_knn(pts, 2, method="brute")
        assert np.allclose(res.sq_dists, ref.sq_dists)
        assert res.indices.shape == (150, 2)
        assert res.cost.work > 0

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            all_knn(uniform_cube(32, 2, 0), 1, method="psychic")
