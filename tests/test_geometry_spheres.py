"""Spheres and hyperplanes: classification semantics and conventions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.spheres import Hyperplane, SideCounts, Sphere

finite = st.floats(min_value=-50, max_value=50, allow_nan=False)


def random_sphere(seed: int, d: int = 2) -> Sphere:
    rng = np.random.default_rng(seed)
    return Sphere(rng.standard_normal(d), float(rng.random() + 0.5))


class TestSphereConstruction:
    def test_basic(self):
        s = Sphere(np.array([1.0, 2.0]), 3.0)
        assert s.dim == 2 and s.radius == 3.0

    def test_zero_radius_rejected(self):
        with pytest.raises(ValueError):
            Sphere(np.zeros(2), 0.0)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Sphere(np.zeros(2), -1.0)

    def test_inf_radius_rejected(self):
        with pytest.raises(ValueError):
            Sphere(np.zeros(2), np.inf)

    def test_nonfinite_center_rejected(self):
        with pytest.raises(ValueError):
            Sphere(np.array([np.nan, 0.0]), 1.0)

    def test_matrix_center_rejected(self):
        with pytest.raises(ValueError):
            Sphere(np.zeros((2, 2)), 1.0)

    def test_scaled(self):
        s = Sphere(np.zeros(2), 2.0).scaled(1.5)
        assert s.radius == 3.0

    def test_scaled_invalid(self):
        with pytest.raises(ValueError):
            Sphere(np.zeros(2), 1.0).scaled(0.0)


class TestSpherePointClassification:
    def test_interior_exterior(self):
        s = Sphere(np.zeros(2), 1.0)
        pts = np.array([[0.0, 0.0], [2.0, 0.0]])
        np.testing.assert_array_equal(s.side_of_points(pts), [-1, 1])

    def test_boundary_counts_interior(self):
        s = Sphere(np.zeros(2), 1.0)
        assert s.side_of_points(np.array([[1.0, 0.0]]))[0] == -1

    def test_signed_distance(self):
        s = Sphere(np.zeros(2), 1.0)
        np.testing.assert_allclose(
            s.signed_distance(np.array([[0.0, 0.0], [3.0, 0.0]])), [-1.0, 2.0]
        )

    def test_dim_mismatch_rejected(self):
        s = Sphere(np.zeros(2), 1.0)
        with pytest.raises(ValueError):
            s.side_of_points(np.zeros((3, 3)))

    def test_contains_closed(self):
        s = Sphere(np.zeros(2), 1.0)
        assert s.contains(np.array([1.0, 0.0]))
        assert not s.contains(np.array([1.0, 1.0]))

    @given(st.integers(0, 1000))
    def test_side_consistent_with_signed_distance(self, seed):
        s = random_sphere(seed, 3)
        pts = np.random.default_rng(seed).standard_normal((20, 3)) * 2
        side = s.side_of_points(pts)
        sd = s.signed_distance(pts)
        assert ((side > 0) == (sd > 0)).all()


class TestSphereBallClassification:
    def test_three_way(self):
        s = Sphere(np.zeros(2), 2.0)
        centers = np.array([[0.0, 0.0], [5.0, 0.0], [2.0, 0.0]])
        radii = np.array([1.0, 1.0, 1.0])
        np.testing.assert_array_equal(s.classify_balls(centers, radii), [-1, 1, 0])

    def test_inf_radius_always_cut(self):
        s = Sphere(np.zeros(2), 2.0)
        out = s.classify_balls(np.array([[10.0, 0.0]]), np.array([np.inf]))
        assert out[0] == 0

    def test_tangent_ball_counts_cut(self):
        s = Sphere(np.zeros(2), 2.0)
        out = s.classify_balls(np.array([[3.0, 0.0]]), np.array([1.0]))
        assert out[0] == 0

    def test_radii_shape_mismatch_rejected(self):
        s = Sphere(np.zeros(2), 2.0)
        with pytest.raises(ValueError):
            s.classify_balls(np.zeros((2, 2)), np.zeros(3))

    @given(st.integers(0, 500))
    def test_cut_iff_band_overlap(self, seed):
        rng = np.random.default_rng(seed)
        s = random_sphere(seed)
        centers = rng.standard_normal((30, 2)) * 2
        radii = rng.random(30)
        cls = s.classify_balls(centers, radii)
        sd = np.abs(np.linalg.norm(centers - s.center, axis=1) - s.radius)
        assert ((cls == 0) == (sd <= radii)).all()

    @given(st.integers(0, 500))
    def test_interior_ball_implies_interior_center(self, seed):
        rng = np.random.default_rng(seed)
        s = random_sphere(seed)
        centers = rng.standard_normal((30, 2)) * 2
        radii = rng.random(30)
        cls = s.classify_balls(centers, radii)
        side = s.side_of_points(centers)
        assert (side[cls == -1] == -1).all()
        assert (side[cls == 1] == 1).all()


class TestHyperplane:
    def test_normalisation(self):
        h = Hyperplane(np.array([0.0, 2.0]), 4.0)
        np.testing.assert_allclose(h.normal, [0, 1])
        assert h.offset == pytest.approx(2.0)

    def test_zero_normal_rejected(self):
        with pytest.raises(ValueError):
            Hyperplane(np.zeros(2), 1.0)

    def test_sides(self):
        h = Hyperplane(np.array([1.0, 0.0]), 0.5)
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, 3.0]])
        np.testing.assert_array_equal(h.side_of_points(pts), [-1, 1, -1])

    def test_on_plane_goes_interior(self):
        h = Hyperplane(np.array([1.0, 0.0]), 0.0)
        assert h.side_of_points(np.array([[0.0, 5.0]]))[0] == -1

    def test_ball_classification(self):
        h = Hyperplane(np.array([1.0, 0.0]), 0.0)
        centers = np.array([[-2.0, 0.0], [2.0, 0.0], [0.5, 0.0]])
        radii = np.array([1.0, 1.0, 1.0])
        np.testing.assert_array_equal(h.classify_balls(centers, radii), [-1, 1, 0])

    def test_inf_ball_cut(self):
        h = Hyperplane(np.array([1.0, 0.0]), 0.0)
        assert h.classify_balls(np.array([[9.0, 0.0]]), np.array([np.inf]))[0] == 0

    def test_dim_mismatch(self):
        h = Hyperplane(np.array([1.0, 0.0]), 0.0)
        with pytest.raises(ValueError):
            h.side_of_points(np.zeros((2, 3)))


class TestSideCounts:
    def test_total(self):
        sc = SideCounts(3, 4, 5)
        assert sc.total == 12
