"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic per-test generator."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def points2d(rng: np.random.Generator) -> np.ndarray:
    """300 uniform points in the unit square."""
    return rng.random((300, 2))


@pytest.fixture
def points3d(rng: np.random.Generator) -> np.ndarray:
    """300 uniform points in the unit cube."""
    return rng.random((300, 3))
