"""The minimal HTTP/1.1 layer: parsing, rendering, error mapping.

Everything runs against in-memory ``asyncio.StreamReader`` objects — no
sockets — so these are pure unit tests of the wire format.  The one
numerically load-bearing property lives here too: ``json_response``
round-trips float64 values bit-exactly (``json.dumps`` repr floats),
which is what the loopback-equivalence tests in test_net_server.py
build on.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.net.http import (
    HttpError,
    Request,
    error_payload,
    json_response,
    read_request,
    render_response,
)


def _parse(data: bytes, **kwargs):
    async def _run():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(_run())


def _raw(method="POST", target="/v1/query", version="HTTP/1.1",
         headers=(), body=b""):
    head = [f"{method} {target} {version}"]
    head += [f"{k}: {v}" for k, v in headers]
    if body:
        head.append(f"Content-Length: {len(body)}")
    return ("\r\n".join(head) + "\r\n\r\n").encode() + body


class TestReadRequest:
    def test_get_with_query_string(self):
        req = _parse(_raw(method="GET", target="/healthz?verbose=1&x="))
        assert req.method == "GET"
        assert req.path == "/healthz"
        assert req.query == {"verbose": "1", "x": ""}
        assert req.body == b""

    def test_post_with_json_body(self):
        body = json.dumps({"point": [0.5, 0.25]}).encode()
        req = _parse(_raw(body=body))
        assert req.method == "POST"
        assert req.json() == {"point": [0.5, 0.25]}

    def test_clean_eof_returns_none(self):
        assert _parse(b"") is None

    def test_header_names_case_insensitive(self):
        req = _parse(_raw(method="GET", target="/", headers=[("X-Thing", "a")]))
        assert req.headers["x-thing"] == "a"

    def test_keep_alive_default_and_close(self):
        assert _parse(_raw(method="GET", target="/")).keep_alive
        req = _parse(_raw(method="GET", target="/",
                          headers=[("Connection", "close")]))
        assert not req.keep_alive

    @pytest.mark.parametrize("line", [b"GARBAGE\r\n\r\n",
                                      b"GET /too few\r\n\r\n",
                                      b"GET / HTTP/2\r\n\r\n"])
    def test_malformed_request_line_is_400(self, line):
        with pytest.raises(HttpError) as exc:
            _parse(line)
        assert exc.value.status == 400

    def test_unsupported_method_is_405(self):
        with pytest.raises(HttpError) as exc:
            _parse(_raw(method="PUT"))
        assert exc.value.status == 405

    def test_chunked_transfer_encoding_rejected(self):
        with pytest.raises(HttpError) as exc:
            _parse(_raw(headers=[("Transfer-Encoding", "chunked")]))
        assert exc.value.status == 400

    def test_oversized_body_is_413(self):
        with pytest.raises(HttpError) as exc:
            _parse(_raw(body=b"x" * 100), max_body_bytes=10)
        assert exc.value.status == 413

    def test_bad_content_length_is_400(self):
        with pytest.raises(HttpError) as exc:
            _parse(_raw(headers=[("Content-Length", "banana")]))
        assert exc.value.status == 400

    def test_oversized_request_line_is_400(self):
        with pytest.raises(HttpError) as exc:
            _parse(_raw(method="GET", target="/" + "q" * 9000))
        assert exc.value.status == 400

    def test_malformed_header_line_is_400(self):
        with pytest.raises(HttpError) as exc:
            _parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
        assert exc.value.status == 400


class TestRequestJson:
    def test_empty_body_parses_as_empty_object(self):
        req = Request(method="POST", path="/", query={}, headers={})
        assert req.json() == {}

    def test_malformed_json_is_400(self):
        req = Request(method="POST", path="/", query={}, headers={},
                      body=b"{nope")
        with pytest.raises(HttpError) as exc:
            req.json()
        assert exc.value.status == 400

    def test_non_object_json_is_400(self):
        req = Request(method="POST", path="/", query={}, headers={},
                      body=b"[1,2]")
        with pytest.raises(HttpError) as exc:
            req.json()
        assert exc.value.status == 400


class TestRender:
    def test_response_shape(self):
        raw = render_response(200, b"hi", content_type="text/plain",
                              keep_alive=False,
                              extra_headers={"Retry-After": "2"})
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode().split("\r\n")
        assert lines[0] == "HTTP/1.1 200 OK"
        assert "Content-Length: 2" in lines
        assert "Connection: close" in lines
        assert "Retry-After: 2" in lines
        assert body == b"hi"

    def test_json_response_floats_round_trip_bit_exact(self):
        # the wire contract the loopback-equivalence tests stand on:
        # repr floats → parsing the body reproduces float64 exactly
        rng = np.random.default_rng(7)
        values = rng.random(64).tolist() + [1e-300, 1 / 3, np.pi]
        raw = json_response(200, {"v": values})
        body = raw.partition(b"\r\n\r\n")[2]
        parsed = json.loads(body)["v"]
        assert np.asarray(parsed, dtype=np.float64).tobytes() == \
            np.asarray(values, dtype=np.float64).tobytes()

    def test_error_payload_ceils_retry_after(self):
        status, payload, headers = error_payload(
            HttpError(429, "slow down", retry_after=0.2))
        assert status == 429
        assert payload == {"error": "slow down", "status": 429}
        assert headers["Retry-After"] == "1"
        _, _, headers = error_payload(
            HttpError(429, "slow down", retry_after=3.5))
        assert headers["Retry-After"] == "4"

    def test_error_payload_without_retry_after(self):
        status, payload, headers = error_payload(HttpError(404, "nope"))
        assert status == 404 and headers == {}
