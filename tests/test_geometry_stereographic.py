"""Stereographic lift/projection and the circle <-> separator duality."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.spheres import Hyperplane, Sphere
from repro.geometry.stereographic import (
    SphereCap,
    circle_to_separator,
    lift,
    project,
    separator_to_circle,
)

coords = st.floats(min_value=-20, max_value=20, allow_nan=False)


class TestLiftProject:
    @given(st.lists(st.tuples(coords, coords), min_size=1, max_size=40))
    def test_roundtrip(self, pts):
        arr = np.array(pts, dtype=np.float64)
        np.testing.assert_allclose(project(lift(arr)), arr, rtol=1e-8, atol=1e-8)

    @given(st.lists(st.tuples(coords, coords, coords), min_size=1, max_size=40))
    def test_lift_lands_on_unit_sphere(self, pts):
        y = lift(np.array(pts, dtype=np.float64))
        np.testing.assert_allclose(np.linalg.norm(y, axis=1), 1.0, rtol=1e-10)

    def test_origin_maps_to_south_pole(self):
        y = lift(np.zeros((1, 2)))
        np.testing.assert_allclose(y[0], [0, 0, -1])

    def test_far_points_approach_north_pole(self):
        y = lift(np.array([[1e8, 0.0]]))
        assert y[0, -1] > 1 - 1e-7

    def test_single_point_1d_api(self):
        p = np.array([1.0, 2.0])
        assert lift(p).shape == (3,)
        np.testing.assert_allclose(project(lift(p)), p)

    def test_project_pole_rejected(self):
        with pytest.raises(ValueError):
            project(np.array([[0.0, 0.0, 1.0]]))


class TestSphereCap:
    def test_normalises(self):
        c = SphereCap(np.array([0.0, 0.0, 2.0]), 1.0)
        np.testing.assert_allclose(c.normal, [0, 0, 1])
        assert c.offset == pytest.approx(0.5)

    def test_offset_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SphereCap(np.array([0.0, 0.0, 1.0]), 1.5)

    def test_zero_normal_rejected(self):
        with pytest.raises(ValueError):
            SphereCap(np.zeros(3), 0.0)

    def test_side_of(self):
        c = SphereCap(np.array([0.0, 0.0, 1.0]), 0.0)
        y = np.array([[0.0, 0.0, 0.5], [0.0, 0.0, -0.5]])
        np.testing.assert_array_equal(c.side_of(y), [1, -1])


class TestDuality:
    @given(
        st.tuples(coords, coords),
        st.floats(min_value=0.1, max_value=30, allow_nan=False),
    )
    @settings(max_examples=200)
    def test_sphere_roundtrip(self, center, radius):
        s = Sphere(np.array(center, dtype=np.float64), radius)
        back = circle_to_separator(separator_to_circle(s))
        assert isinstance(back, Sphere)
        np.testing.assert_allclose(back.center, s.center, rtol=1e-7, atol=1e-7)
        assert back.radius == pytest.approx(s.radius, rel=1e-7)

    @given(
        st.tuples(coords, coords).filter(lambda t: abs(t[0]) + abs(t[1]) > 1e-6),
        st.floats(min_value=-10, max_value=10, allow_nan=False),
    )
    def test_hyperplane_roundtrip(self, normal, offset):
        h = Hyperplane(np.array(normal, dtype=np.float64), offset)
        back = circle_to_separator(separator_to_circle(h), degenerate_eps=1e-7)
        # a hyperplane may come back as a huge sphere (numerics); compare by
        # classification of probe points instead of representation
        rng = np.random.default_rng(0)
        pts = rng.standard_normal((50, 2)) * 3
        if isinstance(back, Hyperplane):
            np.testing.assert_array_equal(back.side_of_points(pts), h.side_of_points(pts))
        else:
            agree = (back.side_of_points(pts) == h.side_of_points(pts)).mean()
            flipped = (back.side_of_points(pts) != h.side_of_points(pts)).mean()
            assert max(agree, flipped) > 0.95

    @given(st.integers(0, 300))
    def test_sphere_membership_matches_circle_side(self, seed):
        """Points inside the pulled-back sphere sit on one side of the circle."""
        rng = np.random.default_rng(seed)
        s = Sphere(rng.standard_normal(2), float(rng.random() * 2 + 0.2))
        circle = separator_to_circle(s)
        pts = rng.standard_normal((100, 2)) * 3
        inside = s.side_of_points(pts) < 0
        sides = circle.side_of(lift(pts))
        # all interior points on one strict side, all exterior on the other
        interior_sides = set(np.sign(sides[inside]).astype(int))
        exterior_sides = set(np.sign(sides[~inside]).astype(int))
        interior_sides.discard(0)
        exterior_sides.discard(0)
        assert not (interior_sides & exterior_sides)

    def test_circle_through_pole_gives_hyperplane(self):
        # normal orthogonal-ish so that a_{d+1} == b
        cap = SphereCap(np.array([1.0, 0.0, 0.0]), 0.0)
        sep = circle_to_separator(cap)
        assert isinstance(sep, Hyperplane)

    def test_degenerate_axis_circle_rejected(self):
        cap = SphereCap(np.array([0.0, 0.0, 1.0]), 0.0)
        # normal along pole axis with b == a_{d+1} - gamma == 1 != 0: this is
        # the equator, whose preimage is the unit sphere in the plane
        sep = circle_to_separator(cap)
        assert isinstance(sep, Sphere)
        np.testing.assert_allclose(sep.center, [0, 0], atol=1e-12)
        assert sep.radius == pytest.approx(1.0)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            separator_to_circle("not a separator")  # type: ignore[arg-type]


class TestDegenerateBranches:
    @given(
        st.tuples(coords, coords, coords).filter(lambda t: sum(abs(v) for v in t) > 1e-3),
        st.floats(min_value=-0.999, max_value=0.999, allow_nan=False),
    )
    @settings(max_examples=200)
    def test_every_valid_cap_pulls_back(self, normal, offset):
        """Mathematically, every circle on S^d (|b| < 1) has a real
        sphere/hyperplane preimage; the ValueError branch in
        circle_to_separator is purely a float-rounding guard and must not
        fire for well-conditioned caps."""
        unit = np.array(normal, dtype=np.float64)
        unit /= np.linalg.norm(unit)
        cap = SphereCap(unit, offset)
        sep = circle_to_separator(cap)
        assert isinstance(sep, (Sphere, Hyperplane))

    def test_pulled_back_sphere_lies_on_the_circle(self):
        """Points of the preimage sphere lift onto the cap's plane."""
        cap = SphereCap(np.array([0.3, -0.5, 0.4]), 0.2)
        sep = circle_to_separator(cap)
        assert isinstance(sep, Sphere)
        rng = np.random.default_rng(0)
        angles = rng.random(32) * 2 * np.pi
        ring = sep.center[None, :] + sep.radius * np.stack(
            [np.cos(angles), np.sin(angles)], axis=1
        )
        lifted = lift(ring)
        np.testing.assert_allclose(lifted @ cap.normal, cap.offset, atol=1e-9)

    def test_degenerate_eps_pole_circle_hyperplane(self):
        # gamma within eps -> treated as a hyperplane when head is nonzero
        cap = SphereCap(np.array([0.6, 0.8, 0.5]), 0.5)
        sep = circle_to_separator(cap, degenerate_eps=1e-6)
        assert isinstance(sep, Hyperplane)
