"""End-to-end integration: the full pipeline of the paper, cross-module."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.fitting import power_law_fit
from repro.baselines import brute_force_knn, kdtree_knn
from repro.core import (
    knn_graph_edges,
    parallel_nearest_neighborhood,
    punted_weighted_depth,
    simple_parallel_dnc,
)
from repro.geometry.kissing import kissing_number
from repro.pvm.machine import Machine
from repro.pvm.scheduler import brent_time, speedup
from repro.separators.mttv import MTTVSeparatorSampler
from repro.separators.quality import ball_split
from repro.workloads import clustered, slab_pairs, uniform_cube


class TestFullPipeline:
    def test_points_to_graph(self):
        """Points -> k-neighborhood system -> k-NN graph, all exact."""
        pts = uniform_cube(600, 2, 1)
        res = parallel_nearest_neighborhood(pts, 2, seed=2)
        edges = knn_graph_edges(res.system)
        ref_edges = knn_graph_edges(brute_force_knn(pts, 2))
        np.testing.assert_array_equal(edges, ref_edges)

    def test_output_is_nicely_embedded_graph(self):
        """The produced graph's neighborhood system has bounded ply —
        the 'nicely embedded' property the paper builds on."""
        pts = uniform_cube(500, 2, 3)
        res = parallel_nearest_neighborhood(pts, 1, seed=4)
        balls = res.system.to_ball_system()
        assert balls.is_k_neighborhood_system(1)
        assert balls.max_ply_at_centers() <= kissing_number(2)

    def test_separator_of_own_output_is_small(self):
        """Close the loop: the k-NN balls our algorithm computes admit a
        small sphere separator, as Theorem 2.1 promises."""
        n = 2000
        pts = uniform_cube(n, 2, 5)
        res = parallel_nearest_neighborhood(pts, 1, seed=6)
        balls = res.system.to_ball_system()
        sampler = MTTVSeparatorSampler(pts, seed=7)
        iotas = [ball_split(sampler.draw(), balls).intersection_number for _ in range(20)]
        assert np.median(iotas) <= 6 * n ** 0.5

    def test_three_algorithms_agree(self):
        pts = clustered(700, 3, 8)
        k = 3
        a = parallel_nearest_neighborhood(pts, k, seed=9).system
        b = simple_parallel_dnc(pts, k, seed=10).system
        c = kdtree_knn(pts, k)
        d = brute_force_knn(pts, k)
        for other in (b, c, d):
            assert a.same_distances(other)


class TestScanPolicyEffect:
    def test_log_scan_increases_depth_only(self):
        pts = uniform_cube(1000, 2, 11)
        unit = parallel_nearest_neighborhood(pts, 1, machine=Machine("unit"), seed=12)
        log = parallel_nearest_neighborhood(pts, 1, machine=Machine("log"), seed=12)
        assert log.cost.depth > unit.cost.depth
        assert log.cost.work == unit.cost.work
        assert log.system.same_distances(unit.system)

    def test_loglog_between(self):
        pts = uniform_cube(1000, 2, 13)
        depths = {}
        for policy in ("unit", "loglog", "log"):
            res = parallel_nearest_neighborhood(pts, 1, machine=Machine(policy), seed=14)
            depths[policy] = res.cost.depth
        assert depths["unit"] <= depths["loglog"] <= depths["log"]


class TestBrentScheduling:
    def test_n_processor_time_near_depth(self):
        """With p = n the Brent time is depth + O(work/n) = O(depth)."""
        n = 4096
        pts = uniform_cube(n, 2, 15)
        res = parallel_nearest_neighborhood(pts, 1, seed=16)
        t = brent_time(res.cost, n)
        assert t <= 2.5 * res.cost.depth + res.cost.work / n

    def test_speedup_grows_then_saturates(self):
        pts = uniform_cube(2048, 2, 17)
        res = parallel_nearest_neighborhood(pts, 1, seed=18)
        s = [speedup(res.cost, p) for p in (1, 8, 64, 512, 4096)]
        assert all(b >= a - 1e-9 for a, b in zip(s, s[1:]))
        assert s[-1] <= res.cost.parallelism + 1e-9


class TestAdversarialComparison:
    def test_sphere_beats_hyperplane_on_slab_pairs(self):
        """The paper's motivation, end to end: on the Omega(n) construction
        the hyperplane-based algorithm must do asymptotically more
        correction work; measure via ball-crossings of the first cut."""
        n = 1024
        pts = slab_pairs(n, 2, 19)
        balls = brute_force_knn(pts, 1).to_ball_system()
        from repro.separators.hyperplane import median_hyperplane

        plane_cut = median_hyperplane(pts, axis=0)
        plane_iota = balls.intersection_number(plane_cut)
        sampler = MTTVSeparatorSampler(pts, seed=20)
        sphere_iotas = [
            ball_split(sampler.draw(), balls).intersection_number for _ in range(30)
        ]
        assert plane_iota >= 0.9 * n
        assert np.median(sphere_iotas) <= plane_iota / 4

    def test_exactness_on_adversarial_input(self):
        pts = slab_pairs(512, 2, 21)
        res = parallel_nearest_neighborhood(pts, 1, seed=22)
        assert res.system.same_distances(brute_force_knn(pts, 1))


class TestDepthScalingShapes:
    @pytest.mark.slow
    def test_fast_dnc_depth_fits_log_not_log2(self):
        ns = [1 << 10, 1 << 12, 1 << 14]
        fast_depths, simple_depths = [], []
        for n in ns:
            pts = uniform_cube(n, 2, n)
            fast_depths.append(parallel_nearest_neighborhood(pts, 1, seed=23).cost.depth)
            simple_depths.append(simple_parallel_dnc(pts, 1, seed=23).cost.depth)
        # compare growth exponents in log n space
        lx = [math.log2(n) for n in ns]
        fit_fast = power_law_fit(lx, fast_depths)
        fit_simple = power_law_fit(lx, simple_depths)
        assert fit_fast.exponent < fit_simple.exponent

    def test_weighted_depth_scales_logarithmically(self):
        vals = {}
        for n in (512, 4096):
            pts = uniform_cube(n, 2, n + 3)
            res = parallel_nearest_neighborhood(pts, 1, seed=24)
            vals[n] = punted_weighted_depth(res.tree)
        assert vals[4096] <= max(4 * math.log2(4096), 3 * vals[512] + 10)
