"""Building blocks of the frontier engine, tested against their
per-node reference implementations.

The frontier engine's equivalence contract (see
``tests/test_engine_equivalence.py``) rests on a handful of batched
kernels each being *bitwise* identical to the sequential code path it
replaces.  These tests pin that property kernel by kernel, plus the
recursion-limit guard and the iterative (deep-tree safe) partition-tree
traversals that the degenerate-workload regression relies on.
"""

from __future__ import annotations

import sys

import numpy as np
import pytest

from repro.core.correction import apply_candidate_pairs, apply_candidate_pairs_batch
from repro.core.fast_dnc import FastDnCConfig, parallel_nearest_neighborhood
from repro.core.partition_tree import PartitionNode
from repro.geometry.radon import radon_point, radon_points_batch
from repro.geometry.centerpoints import (
    iterated_radon_centerpoint,
    iterated_radon_centerpoint_many,
)
from repro.geometry.spheres import Sphere
from repro.pvm import Machine
from repro.pvm.primitives import segmented_pack, segmented_reduce, segmented_split
from repro.separators.batch import (
    batched_side_of_points,
    prepare_samplers,
    side_split_is_good,
)
from repro.separators.mttv import MTTVSeparatorSampler, default_sample_size
from repro.separators.quality import default_delta, is_good_point_split
from repro.util.recursion import FRAMES_PER_LEVEL, estimated_tree_levels, recursion_guard
from repro.workloads import collinear, uniform_cube, with_duplicates


# ---------------------------------------------------------------------------
# segmented primitives vs the obvious per-segment reference
# ---------------------------------------------------------------------------


def _random_segments(rng, n_segments, max_len):
    lengths = rng.integers(0, max_len + 1, size=n_segments)
    seg_ids = np.repeat(np.arange(n_segments), lengths)
    return lengths, seg_ids


class TestSegmentedPrimitives:
    @pytest.mark.parametrize("op", ["add", "max", "min"])
    def test_segmented_reduce_matches_per_segment(self, op):
        rng = np.random.default_rng(0)
        lengths, seg_ids = _random_segments(rng, 7, 9)
        # empty segments are dropped from seg_ids; reduce over present ids
        present = np.unique(seg_ids)
        x = rng.normal(size=seg_ids.shape[0])
        got = segmented_reduce(Machine(), x, seg_ids, op=op)
        # reference: each segment reduced in isolation by the same ufunc,
        # so the batch must be insensitive to neighboring segments
        ufunc = {"add": np.add, "max": np.maximum, "min": np.minimum}[op]
        want = np.array([ufunc.reduceat(x[seg_ids == s], [0])[0] for s in present])
        np.testing.assert_array_equal(got, want)

    def test_segmented_split_stable_per_segment(self):
        rng = np.random.default_rng(1)
        lengths, seg_ids = _random_segments(rng, 9, 12)
        x = rng.integers(0, 1000, size=seg_ids.shape[0])
        flags = rng.random(size=x.shape[0]) < 0.4
        out, false_counts = segmented_split(None, x, flags, seg_ids)
        present = np.unique(seg_ids)
        assert false_counts.shape[0] == present.shape[0]
        start = 0
        for j, s in enumerate(present):
            mask = seg_ids == s
            xs, fs = x[mask], flags[mask]
            want = np.concatenate([xs[~fs], xs[fs]])
            got = out[start : start + xs.shape[0]]
            np.testing.assert_array_equal(got, want)
            assert false_counts[j] == int(np.count_nonzero(~fs))
            start += xs.shape[0]

    def test_segmented_pack_matches_per_segment(self):
        rng = np.random.default_rng(2)
        lengths, seg_ids = _random_segments(rng, 6, 10)
        x = rng.normal(size=seg_ids.shape[0])
        mask = rng.random(size=x.shape[0]) < 0.5
        packed, counts = segmented_pack(None, x, mask, seg_ids)
        np.testing.assert_array_equal(packed, x[mask])
        present = np.unique(seg_ids)
        want_counts = [int(np.count_nonzero(mask[seg_ids == s])) for s in present]
        np.testing.assert_array_equal(counts, want_counts)

    def test_machine_none_is_uncharged(self):
        m = Machine()
        x = np.arange(10.0)
        seg = np.zeros(10, dtype=np.int64)
        before = m.total
        segmented_split(None, x, x > 4, seg)
        segmented_pack(None, x, x > 4, seg)
        assert m.total.work == before.work
        segmented_split(m, x, x > 4, seg)
        assert m.total.work > before.work


# ---------------------------------------------------------------------------
# batched geometry kernels: bitwise equal to the sequential path
# ---------------------------------------------------------------------------


class TestBatchedGeometry:
    def test_radon_points_batch_matches_sequential(self):
        rng = np.random.default_rng(3)
        groups = rng.normal(size=(17, 5, 3))  # d=3 needs d+2=5 points
        got = radon_points_batch(groups)
        want = np.stack([radon_point(g) for g in groups])
        np.testing.assert_array_equal(got, want)

    def test_radon_points_batch_degenerate_group_falls_back_to_mean(self):
        rng = np.random.default_rng(4)
        groups = rng.normal(size=(3, 4, 2))
        groups[1] = 1.0  # all-identical group: no proper Radon partition
        got = radon_points_batch(groups)
        np.testing.assert_array_equal(got[1], groups[1].mean(axis=0))
        np.testing.assert_array_equal(got[0], radon_point(groups[0]))

    def test_centerpoint_many_matches_sequential(self):
        sets = [
            uniform_cube(60, 2, seed=5),
            uniform_cube(45, 3, seed=6),
            uniform_cube(23, 2, seed=7),
            np.ones((20, 3)),  # fully degenerate set
        ]
        many = iterated_radon_centerpoint_many(
            sets, [np.random.default_rng(100 + i) for i in range(len(sets))]
        )
        for i, pts in enumerate(sets):
            one = iterated_radon_centerpoint(pts, np.random.default_rng(100 + i))
            np.testing.assert_array_equal(many[i], one)

    def test_prepare_samplers_matches_direct_construction(self):
        sets = [uniform_cube(80, 2, seed=8), uniform_cube(120, 2, seed=9)]
        batched = prepare_samplers(
            sets, [np.random.default_rng(200 + i) for i in range(len(sets))]
        )
        for i, pts in enumerate(sets):
            direct = MTTVSeparatorSampler(
                pts,
                seed=np.random.default_rng(200 + i),
                sample_size=default_sample_size(pts.shape[1]),
            )
            np.testing.assert_array_equal(
                batched[i].center_estimate, direct.center_estimate
            )
            # generators are in lockstep: the next draw agrees exactly
            a, b = batched[i].draw(), direct.draw()
            np.testing.assert_array_equal(
                a.side_of_points(pts), b.side_of_points(pts)
            )

    def test_batched_side_of_points_matches_sphere_calls(self):
        rng = np.random.default_rng(10)
        sets = [rng.normal(size=(n, 2)) for n in (30, 1, 17)]
        seps = [
            Sphere(center=rng.normal(size=2), radius=float(rng.uniform(0.5, 2.0)))
            for _ in sets
        ]
        got = batched_side_of_points(seps, sets)
        for sep, pts, side in zip(seps, sets, got):
            np.testing.assert_array_equal(side, sep.side_of_points(pts))

    def test_side_split_is_good_matches_quality(self):
        rng = np.random.default_rng(11)
        delta = default_delta(2, 0.02)
        for n in (2, 3, 10, 101):
            pts = rng.normal(size=(n, 2))
            sphere = Sphere(center=pts.mean(axis=0), radius=float(np.median(
                np.linalg.norm(pts - pts.mean(axis=0), axis=1))) or 1.0)
            side = sphere.side_of_points(pts)
            assert side_split_is_good(side, delta) == is_good_point_split(
                sphere, pts, delta
            )
        assert not side_split_is_good(np.array([1], dtype=np.int8), delta)
        assert not side_split_is_good(np.array([1, 1], dtype=np.int8), delta)


# ---------------------------------------------------------------------------
# batched neighbor-list merge
# ---------------------------------------------------------------------------


class TestApplyCandidatePairsBatch:
    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_matches_sequential_apply(self, k):
        rng = np.random.default_rng(12)
        n = 120
        points = rng.normal(size=(n, 2))
        # start from partially-filled lists with sentinel slots
        idx_a = np.full((n, k), -1, dtype=np.int64)
        sq_a = np.full((n, k), np.inf)
        for i in range(n):
            fill = rng.integers(0, k + 1)
            others = rng.choice(np.delete(np.arange(n), i), size=fill, replace=False)
            d = np.sum((points[others] - points[i]) ** 2, axis=1)
            order = np.argsort(d, kind="stable")
            idx_a[i, :fill] = others[order]
            sq_a[i, :fill] = d[order]
        idx_b, sq_b = idx_a.copy(), sq_a.copy()

        pairs = 400
        owners = rng.integers(0, n, size=pairs)
        cands = rng.integers(0, n, size=pairs)
        changed_seq = apply_candidate_pairs(
            points, idx_a, sq_a, np.arange(n), owners, cands, k
        )
        changed_bat = apply_candidate_pairs_batch(points, idx_b, sq_b, owners, cands, k)
        np.testing.assert_array_equal(idx_a, idx_b)
        np.testing.assert_array_equal(sq_a, sq_b)
        assert changed_seq == changed_bat

    def test_empty_and_self_pairs(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0]])
        idx = np.full((2, 1), -1, dtype=np.int64)
        sq = np.full((2, 1), np.inf)
        assert apply_candidate_pairs_batch(
            points, idx, sq, np.empty(0, np.int64), np.empty(0, np.int64), 1
        ) == 0
        # all self-pairs: nothing changes
        assert apply_candidate_pairs_batch(
            points, idx, sq, np.array([0, 1]), np.array([0, 1]), 1
        ) == 0
        assert np.all(idx == -1)

    def test_duplicate_candidates_keep_min_distance(self):
        points = np.array([[0.0, 0.0], [3.0, 0.0], [1.0, 0.0]])
        idx = np.full((3, 1), -1, dtype=np.int64)
        sq = np.full((3, 1), np.inf)
        owners = np.array([0, 0, 0])
        cands = np.array([1, 2, 1])
        changed = apply_candidate_pairs_batch(points, idx, sq, owners, cands, 1)
        assert changed == 1
        assert idx[0, 0] == 2 and sq[0, 0] == 1.0


# ---------------------------------------------------------------------------
# recursion guard + deep-tree regression
# ---------------------------------------------------------------------------


class TestRecursionGuard:
    def test_estimated_levels_bounds(self):
        assert estimated_tree_levels(10, 64, 0.9) == 1  # already a base case
        levels = estimated_tree_levels(10_000, 8, 0.75)
        assert 1 < levels < 10_000
        # each level must strip at least one point under the trivial bound
        assert estimated_tree_levels(500, 4, 1.5) == 500
        assert estimated_tree_levels(500, 4, 0.0) == 500

    def test_guard_noop_when_limit_suffices(self):
        before = sys.getrecursionlimit()
        with recursion_guard(1):
            assert sys.getrecursionlimit() == before
        assert sys.getrecursionlimit() == before

    def test_guard_raises_and_restores_limit(self):
        before = sys.getrecursionlimit()
        huge = (before // FRAMES_PER_LEVEL) * 50
        try:
            with recursion_guard(huge):
                assert sys.getrecursionlimit() > before
                assert sys.getrecursionlimit() >= huge * FRAMES_PER_LEVEL
            assert sys.getrecursionlimit() == before
        finally:
            sys.setrecursionlimit(before)

    def test_guard_restores_on_exception(self):
        before = sys.getrecursionlimit()
        with pytest.raises(RuntimeError):
            with recursion_guard(before * 2):
                raise RuntimeError("boom")
        assert sys.getrecursionlimit() == before


def _deep_chain(depth: int) -> PartitionNode:
    """A pathological left-spine chain ``depth`` edges tall."""
    sep = Sphere(center=np.zeros(2), radius=1.0)
    node = PartitionNode(indices=np.array([depth], dtype=np.int64))
    for i in reversed(range(depth)):
        leaf = PartitionNode(indices=np.array([i], dtype=np.int64))
        node = PartitionNode(
            indices=np.arange(i, depth + 1, dtype=np.int64),
            separator=sep,
            left=node,
            right=leaf,
        )
    return node


class TestDeepTreeRegression:
    def test_traversals_survive_trees_deeper_than_the_interpreter_limit(self):
        depth = sys.getrecursionlimit() * 3
        root = _deep_chain(depth)
        assert root.height() == depth
        assert sum(1 for _ in root.leaves()) == depth + 1
        nodes = list(root.nodes())
        assert len(nodes) == 2 * depth + 1
        # preorder: root first, leftmost leaf before any right sibling leaf
        assert nodes[0] is root
        assert nodes[1] is root.left

    def test_recursive_engine_runs_under_a_tight_interpreter_limit(self):
        """Degenerate deep-tree workload: duplicates + collinear points with
        a tiny base case force an unusually deep recursion; the guard must
        raise the interpreter limit for the run and restore it after."""
        base = with_duplicates(collinear(220, 2, seed=13), 0.6, seed=13)
        before = sys.getrecursionlimit()
        from repro.util.recursion import _stack_depth

        tight = _stack_depth() + 380  # far less than the recursion needs
        sys.setrecursionlimit(tight)
        try:
            res = parallel_nearest_neighborhood(
                base, 1, seed=17,
                config=FastDnCConfig(engine="recursive", base_case_size=4),
            )
            assert res.tree.height() >= 1
            assert sys.getrecursionlimit() == tight
        finally:
            sys.setrecursionlimit(before)
