"""The open-loop load generator: seeded arrivals, honest accounting."""

from __future__ import annotations

import asyncio
import math

import numpy as np
import pytest

from repro.api import net_serve
from repro.net import LoadResult, NetConfig, ServerThread, format_table, run_load
from repro.net.loadgen import _arrival_offsets
from repro.workloads import uniform_cube


class TestArrivalOffsets:
    def test_fixed_spacing(self):
        rng = np.random.default_rng(0)
        offs = _arrival_offsets(100.0, 0.5, "fixed", rng)
        assert offs.shape == (50,)
        assert offs[0] == 0.0
        np.testing.assert_allclose(np.diff(offs), 0.01)

    def test_poisson_is_seeded_and_open_loop(self):
        a = _arrival_offsets(200.0, 1.0, "poisson", np.random.default_rng(3))
        b = _arrival_offsets(200.0, 1.0, "poisson", np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)  # reproducible stream
        c = _arrival_offsets(200.0, 1.0, "poisson", np.random.default_rng(4))
        assert not np.array_equal(a, c)
        assert a[0] == 0.0 and np.all(np.diff(a) >= 0)

    def test_at_least_one_arrival(self):
        offs = _arrival_offsets(1.0, 0.01, "fixed", np.random.default_rng(0))
        assert offs.shape == (1,)


class TestLoadResult:
    def test_nearest_rank_percentiles(self):
        r = LoadResult(qps_target=10, duration_s=1, arrivals="fixed",
                       latencies_ms=[float(v) for v in range(1, 101)])
        assert r.percentile(50) == 50.0
        assert r.p95_ms == 95.0
        assert r.p99_ms == 99.0

    def test_empty_latencies_are_nan(self):
        r = LoadResult(qps_target=10, duration_s=1, arrivals="fixed")
        assert math.isnan(r.p50_ms)
        assert r.achieved_qps == 0.0

    def test_to_dict_fields(self):
        r = LoadResult(qps_target=10, duration_s=1, arrivals="poisson",
                       sent=5, ok=4, rejected=1, elapsed_s=2.0,
                       latencies_ms=[1.0, 2.0])
        d = r.to_dict()
        assert d["sent"] == 5 and d["rejected"] == 1
        assert d["achieved_qps"] == pytest.approx(2.0)
        assert set(d) >= {"p50_ms", "p95_ms", "p99_ms", "arrivals"}


class TestFormatTable:
    def test_header_and_rows(self):
        r = LoadResult(qps_target=100, duration_s=1, arrivals="fixed",
                       sent=10, ok=9, rejected=1, elapsed_s=1.0,
                       latencies_ms=[1.0] * 9)
        text = format_table([r], title="sweep")
        lines = text.splitlines()
        assert lines[0] == "sweep"
        assert "p99 ms" in lines[1] and "429" in lines[1]
        assert lines[2].split()[:4] == ["100", "10", "9", "1"]


class TestRunLoad:
    def test_against_loopback_server(self):
        pts = uniform_cube(300, 2, seed=61)
        server = net_serve(pts, 1, net=NetConfig(port=0), seed=62)
        with ServerThread(server) as st:
            result = asyncio.run(run_load(
                "127.0.0.1", st.port, qps=80.0, duration_s=0.4,
                points=pts, seed=0))
        assert result.sent == 32
        assert result.ok + result.rejected + result.deadline_exceeded + \
            result.errors == result.sent
        assert result.ok > 0
        assert len(result.latencies_ms) == result.ok
        assert result.p50_ms > 0

    def test_rate_limited_server_yields_429s(self):
        pts = uniform_cube(200, 2, seed=63)
        server = net_serve(pts, 1, net=NetConfig(port=0, rate=10.0, burst=2),
                           seed=64)
        with ServerThread(server) as st:
            result = asyncio.run(run_load(
                "127.0.0.1", st.port, qps=120.0, duration_s=0.4,
                points=pts, seed=1))
        assert result.rejected > 0  # the admission layer shed load
        assert result.ok > 0  # but some sustained traffic got through
        assert result.ok + result.rejected + result.errors == result.sent
