"""Radon partitions: the defining algebraic identities and hull membership."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.radon import radon_partition, radon_point


def random_points(seed: int, m: int, dim: int) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal((m, dim))


class TestRadonPartition:
    @given(st.integers(0, 500), st.integers(1, 4))
    @settings(max_examples=100)
    def test_affine_dependence_identities(self, seed, dim):
        pts = random_points(seed, dim + 2, dim)
        alpha, pos, neg = radon_partition(pts)
        assert abs(alpha.sum()) < 1e-8
        np.testing.assert_allclose((alpha[:, None] * pts).sum(axis=0), 0.0, atol=1e-7)
        assert pos.any() and neg.any()

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            radon_partition(np.zeros((3, 2)))

    def test_extra_points_allowed(self):
        pts = random_points(1, 7, 2)
        alpha, pos, neg = radon_partition(pts)
        assert alpha.shape == (7,)


class TestRadonPoint:
    @given(st.integers(0, 500), st.integers(1, 4))
    @settings(max_examples=100)
    def test_point_in_both_hulls(self, seed, dim):
        """The Radon point is a convex combination of both sign classes."""
        pts = random_points(seed, dim + 2, dim)
        alpha, pos, neg = radon_partition(pts)
        q = radon_point(pts)
        wp = alpha[pos]
        qp = (wp[:, None] * pts[pos]).sum(axis=0) / wp.sum()
        wn = -alpha[neg]
        qn = (wn[:, None] * pts[neg]).sum(axis=0) / wn.sum()
        np.testing.assert_allclose(q, qp, atol=1e-7)
        np.testing.assert_allclose(q, qn, atol=1e-6)

    def test_classic_square_example(self):
        # four points of a square in R^2: Radon point is the center
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        q = radon_point(pts)
        np.testing.assert_allclose(q, [0.5, 0.5], atol=1e-8)

    def test_triangle_with_interior_point(self):
        # point inside a triangle: Radon point is that interior point
        pts = np.array([[0.0, 0.0], [4.0, 0.0], [0.0, 4.0], [1.0, 1.0]])
        q = radon_point(pts)
        np.testing.assert_allclose(q, [1.0, 1.0], atol=1e-8)

    @given(st.integers(0, 200))
    def test_inside_bounding_box(self, seed):
        pts = random_points(seed, 5, 3)
        q = radon_point(pts)
        assert (q >= pts.min(axis=0) - 1e-9).all()
        assert (q <= pts.max(axis=0) + 1e-9).all()
