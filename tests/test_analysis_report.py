"""ASCII chart rendering."""

from __future__ import annotations

import pytest

from repro.analysis.report import Series, ascii_chart


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series("a", [1, 2], [1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Series("a", [], [])


class TestChart:
    def test_contains_markers_and_legend(self):
        out = ascii_chart(
            [Series("up", [1, 2, 3], [1, 2, 3]), Series("down", [1, 2, 3], [3, 2, 1])]
        )
        assert "*" in out and "o" in out
        assert "up" in out and "down" in out

    def test_title_rendered(self):
        out = ascii_chart([Series("s", [1, 2], [1, 2])], title="my chart")
        assert out.splitlines()[0] == "my chart"

    def test_dimensions(self):
        out = ascii_chart([Series("s", [0, 1], [0, 1])], width=20, height=5)
        plot_rows = [l for l in out.splitlines() if "|" in l]
        assert len(plot_rows) == 5
        inner = plot_rows[0].split("|")[1]
        assert len(inner) == 20

    def test_log_axis_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_chart([Series("s", [0.0, 1.0], [1.0, 2.0])], log_x=True)

    def test_log_axis_labels_detransformed(self):
        out = ascii_chart([Series("s", [10, 1000], [1, 2])], log_x=True)
        assert "10" in out and "1e+03" in out

    def test_constant_series_does_not_crash(self):
        out = ascii_chart([Series("flat", [1, 2, 3], [5, 5, 5])])
        assert "flat" in out

    def test_extremes_placed_at_corners(self):
        out = ascii_chart([Series("s", [0, 10], [0, 10])], width=10, height=4)
        rows = [l for l in out.splitlines() if "|" in l]
        assert rows[0].split("|")[1][-1] == "*"  # max at top right
        assert rows[-1].split("|")[1][0] == "*"  # min at bottom left

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([Series("s", [1], [1])], width=2, height=2)

    def test_no_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([])

    def test_many_series_cycle_markers(self):
        series = [Series(f"s{i}", [i + 1], [i + 1]) for i in range(10)]
        out = ascii_chart(series)
        assert "s9" in out
