"""PVector: operator semantics and automatic cost charging."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pvm import Machine, PVector
from repro.pvm.cost import Cost


@pytest.fixture
def m() -> Machine:
    return Machine()


class TestConstruction:
    def test_iota(self, m):
        v = PVector.iota(m, 5)
        np.testing.assert_array_equal(v.to_numpy(), [0, 1, 2, 3, 4])
        assert m.total == Cost(1, 5)

    def test_full(self, m):
        v = PVector.full(m, 4, 7.0)
        np.testing.assert_array_equal(v.to_numpy(), [7, 7, 7, 7])

    def test_from_array_is_free(self, m):
        PVector.from_array(m, np.arange(100))
        assert m.total == Cost(0, 0)

    def test_2d_rejected(self, m):
        with pytest.raises(ValueError):
            PVector(m, np.zeros((2, 2)))

    def test_len(self, m):
        assert len(PVector.from_array(m, np.arange(9))) == 9


class TestArithmetic:
    def test_vector_scalar(self, m):
        v = PVector.from_array(m, np.array([1.0, 2.0]))
        np.testing.assert_array_equal((v * 3 + 1).to_numpy(), [4, 7])
        assert m.total == Cost(2, 4)  # two elementwise steps over 2 elements

    def test_vector_vector(self, m):
        a = PVector.from_array(m, np.array([1.0, 2.0, 3.0]))
        b = PVector.from_array(m, np.array([10.0, 20.0, 30.0]))
        np.testing.assert_array_equal((a + b).to_numpy(), [11, 22, 33])

    def test_reflected_ops(self, m):
        v = PVector.from_array(m, np.array([1.0, 2.0]))
        np.testing.assert_array_equal((10 - v).to_numpy(), [9, 8])
        np.testing.assert_array_equal((2 * v).to_numpy(), [2, 4])

    def test_negation_and_abs(self, m):
        v = PVector.from_array(m, np.array([-1.0, 2.0]))
        np.testing.assert_array_equal((-v).to_numpy(), [1, -2])
        np.testing.assert_array_equal(abs(v).to_numpy(), [1, 2])

    def test_division_and_mod(self, m):
        v = PVector.from_array(m, np.array([7.0, 8.0]))
        np.testing.assert_array_equal((v / 2).to_numpy(), [3.5, 4])
        np.testing.assert_array_equal((v % 3).to_numpy(), [1, 2])

    def test_length_mismatch_rejected(self, m):
        a = PVector.from_array(m, np.arange(3))
        b = PVector.from_array(m, np.arange(4))
        with pytest.raises(ValueError):
            _ = a + b

    def test_cross_machine_rejected(self, m):
        other = Machine()
        a = PVector.from_array(m, np.arange(3))
        b = PVector.from_array(other, np.arange(3))
        with pytest.raises(ValueError):
            _ = a + b

    def test_unsupported_operand(self, m):
        v = PVector.from_array(m, np.arange(3))
        with pytest.raises(TypeError):
            _ = v + "text"


class TestCollectives:
    def test_scan_matches_primitive(self, m):
        v = PVector.from_array(m, np.arange(1, 6, dtype=float))
        np.testing.assert_array_equal(v.scan(inclusive=True).to_numpy(), [1, 3, 6, 10, 15])

    def test_reduce(self, m):
        v = PVector.from_array(m, np.arange(10, dtype=float))
        assert v.reduce() == 45.0
        assert v.reduce("max") == 9.0

    def test_pack_and_boolean_indexing(self, m):
        v = PVector.from_array(m, np.arange(6))
        evens = v[v % 2 == 0]
        np.testing.assert_array_equal(evens.to_numpy(), [0, 2, 4])

    def test_gather_via_integer_indexing(self, m):
        v = PVector.from_array(m, np.array([10.0, 20.0, 30.0]))
        idx = PVector.from_array(m, np.array([2, 0]))
        np.testing.assert_array_equal(v[idx].to_numpy(), [30, 10])

    def test_permute_roundtrip(self, m):
        v = PVector.from_array(m, np.arange(5, dtype=float))
        perm = PVector.from_array(m, np.array([4, 3, 2, 1, 0]))
        np.testing.assert_array_equal(v.permute(perm).gather(perm).to_numpy(), v.to_numpy())

    def test_permute_length_checked(self, m):
        v = PVector.from_array(m, np.arange(5, dtype=float))
        short = PVector.from_array(m, np.array([0, 1]))
        with pytest.raises(ValueError):
            v.permute(short)

    def test_float_index_rejected(self, m):
        v = PVector.from_array(m, np.arange(5, dtype=float))
        fidx = PVector.from_array(m, np.array([0.0, 1.0]))
        with pytest.raises(TypeError):
            v.gather(fidx)

    def test_split(self, m):
        v = PVector.from_array(m, np.arange(6))
        lo, hi = v.split(v >= 3)
        np.testing.assert_array_equal(lo.to_numpy(), [0, 1, 2])
        np.testing.assert_array_equal(hi.to_numpy(), [3, 4, 5])

    def test_getitem_wrong_key(self, m):
        v = PVector.from_array(m, np.arange(4))
        with pytest.raises(TypeError):
            _ = v[0]


class TestCostAccounting:
    def test_pipeline_charges_expected_total(self, m):
        v = PVector.iota(m, 8)  # (1, 8)
        w = (v * 2).scan()      # ewise (1, 8) + scan (1, 8)
        _ = w.reduce()          # scan (1, 8)
        assert m.total == Cost(4, 32)

    @given(st.integers(1, 50))
    def test_ewise_work_scales_with_n(self, n):
        m = Machine()
        v = PVector.from_array(m, np.arange(n, dtype=float))
        _ = v + 1
        assert m.total == Cost(1, n)
