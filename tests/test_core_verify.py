"""The definition-level audit of k-neighborhood systems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import brute_force_knn
from repro.core import parallel_nearest_neighborhood, simple_parallel_dnc
from repro.core.verify import verify_system
from repro.core.neighborhood import KNeighborhoodSystem
from repro.workloads import clustered, uniform_cube, with_duplicates


class TestVerifyPasses:
    @pytest.mark.parametrize("k", [1, 3])
    def test_brute_force_output_passes(self, k):
        pts = uniform_cube(400, 2, k)
        report = verify_system(brute_force_knn(pts, k))
        assert report.ok
        assert "OK" in report.summary()

    def test_fast_dnc_output_passes(self):
        pts = clustered(500, 3, 2)
        res = parallel_nearest_neighborhood(pts, 2, seed=1)
        assert verify_system(res.system)

    def test_simple_dnc_output_passes(self):
        pts = uniform_cube(400, 2, 3)
        res = simple_parallel_dnc(pts, 2, seed=2)
        assert verify_system(res.system)

    def test_duplicates_pass(self):
        pts = with_duplicates(uniform_cube(200, 2, 4), 0.4, 5)
        assert verify_system(brute_force_knn(pts, 1))

    def test_padded_lists_pass(self):
        # 3 points, k=5: lists padded, maximality exempted
        pts = uniform_cube(3, 2, 6)
        assert verify_system(brute_force_knn(pts, 5))

    def test_chunking_irrelevant(self):
        pts = uniform_cube(300, 2, 7)
        sys1 = brute_force_knn(pts, 2)
        assert verify_system(sys1, chunk=17).ok == verify_system(sys1, chunk=1000).ok


class TestVerifyCatchesCorruption:
    def _base(self):
        pts = uniform_cube(100, 2, 8)
        return pts, brute_force_knn(pts, 2)

    def test_inflated_radius_flagged(self):
        pts, good = self._base()
        bad = KNeighborhoodSystem(
            pts, 2, good.neighbor_indices, good.neighbor_sq_dists * 4.0
        )
        report = verify_system(bad)
        assert report.invalid_radius or report.bad_lists
        assert not report.ok
        assert "FAILED" in report.summary()

    def test_shrunk_radius_flagged_not_maximal(self):
        pts, good = self._base()
        bad = KNeighborhoodSystem(
            pts, 2, good.neighbor_indices, good.neighbor_sq_dists * 0.25
        )
        report = verify_system(bad)
        assert report.not_maximal or report.bad_lists

    def test_wrong_neighbor_ids_flagged(self):
        pts, good = self._base()
        idx = good.neighbor_indices.copy()
        idx[0] = (idx[0] + 1) % 100
        bad = KNeighborhoodSystem(pts, 2, idx, good.neighbor_sq_dists)
        assert verify_system(bad).bad_lists
