"""Multiprocess serving: bit-identical fan-out and leak-free shutdown.

``ServingPool.execute`` must reproduce ``ServingIndex.execute`` byte for
byte for every worker count and both request kinds — per-row answers are
independent of batch composition and shards merge back in row order — and
shutting the pool down (including mid-stream, with tickets still queued
in the owning :class:`~repro.serve.batcher.Batcher`) must leave no worker
process and no ``/dev/shm`` segment behind.
"""

from __future__ import annotations

import glob

import numpy as np
import pytest

import repro
from repro.parallel.shm import SHM_PREFIX
from repro.serve import Batcher, ResultCache, ServingIndex, ServingPool


def _shm_segments():
    return glob.glob(f"/dev/shm/{SHM_PREFIX}*")


@pytest.fixture(scope="module")
def index():
    pts = repro.workloads.uniform_cube(1200, 2, seed=5)
    return ServingIndex.build(pts, k=3, seed=11, with_structure=True)


@pytest.fixture(scope="module")
def queries():
    return repro.workloads.uniform_cube(500, 2, seed=77)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_pool_knn_bit_identical(index, queries, workers):
    ref = index.execute("knn", queries)
    with ServingPool(index, workers, min_shard=32) as pool:
        idx, sq = pool.execute("knn", queries)
    assert np.array_equal(idx, ref[0]) and idx.dtype == ref[0].dtype
    assert np.array_equal(sq, ref[1]) and sq.dtype == ref[1].dtype


@pytest.mark.parametrize("workers", [2, 3])
def test_pool_covering_bit_identical(index, queries, workers):
    ref = index.execute("covering", queries)
    with ServingPool(index, workers, min_shard=16) as pool:
        rows, ids = pool.execute("covering", queries)
    assert np.array_equal(rows, ref[0])
    assert np.array_equal(ids, ref[1])


def test_pool_tiny_batch_answers_on_master(index, queries):
    """Batches below one shard skip the dispatch but answer identically."""
    with ServingPool(index, 2, min_shard=64) as pool:
        before = pool.machine.metrics.counter("serve.pool_batches") if pool.machine else 0
        idx, sq = pool.execute("knn", queries[:5])
        assert before == 0
    ref = index.execute("knn", queries[:5])
    assert np.array_equal(idx, ref[0]) and np.array_equal(sq, ref[1])


def test_pool_k_override_and_empty_batch(index, queries):
    with ServingPool(index, 2, min_shard=16) as pool:
        ref = index.execute("knn", queries[:64], k=7)
        idx, sq = pool.execute("knn", queries[:64], k=7)
        assert np.array_equal(idx, ref[0]) and np.array_equal(sq, ref[1])
        idx0, sq0 = pool.execute("knn", np.empty((0, 2)))
        assert idx0.shape == (0, 3) and sq0.shape == (0, 3)


def test_pool_through_batcher_matches_serial(index, queries):
    """The full online stack — batcher + cache + pool — stays exact."""
    ref_idx, ref_sq = index.execute("knn", queries)
    pool = ServingPool(index, 2, min_shard=32)
    with Batcher(
        index, kind="knn", max_batch=128, cache=ResultCache(2048), pool=pool
    ) as batcher:
        tickets = batcher.submit_many(queries)
        batcher.flush()
        for i, t in enumerate(tickets):
            assert np.array_equal(t.value[0], ref_idx[i])
            assert np.array_equal(t.value[1], ref_sq[i])
        hot = batcher.submit(queries[3])  # cache hit, never touches the pool
        assert hot.cached and np.array_equal(hot.value[0], ref_idx[3])
    assert pool.closed
    assert _shm_segments() == []


def test_pool_clean_shutdown_mid_stream(index, queries):
    """Closing with tickets still queued drops them, kills the workers and
    releases every shm segment."""
    pool = ServingPool(index, 2, min_shard=32)
    batcher = Batcher(index, kind="knn", max_batch=10_000, pool=pool)
    tickets = batcher.submit_many(queries[:100])
    assert batcher.pending == 100
    batcher.close(flush=False)
    assert batcher.pending == 0
    assert not any(t.done for t in tickets)
    assert pool.closed
    assert _shm_segments() == []
    with pytest.raises(RuntimeError, match="closed"):
        pool.execute("knn", queries[:4])


def test_pool_close_idempotent_and_no_leaks(index, queries):
    pool = ServingPool(index, 2)
    pool.execute("knn", queries[:256])
    pool.close()
    pool.close()
    assert _shm_segments() == []


def test_api_serve_with_workers(queries):
    pts = repro.workloads.uniform_cube(800, 2, seed=21)
    with repro.api.serve(
        pts, k=2, serve_workers=2, max_batch=128, seed=6
    ) as batcher:
        tickets = batcher.submit_many(queries[:300])
        batcher.flush()
        ref_idx, ref_sq = batcher.index.execute("knn", queries[:300], k=2)
        for i, t in enumerate(tickets):
            assert np.array_equal(t.value[0], ref_idx[i])
            assert np.array_equal(t.value[1], ref_sq[i])
    assert batcher.pool.closed
    assert _shm_segments() == []
