"""The neighborhood query structure (Section 3): correctness, shape, cost."""

from __future__ import annotations


import numpy as np
import pytest

from repro.analysis.recurrences import min_valid_m0
from repro.baselines import brute_force_knn
from repro.core.query import NeighborhoodQueryStructure, QueryConfig
from repro.geometry.balls import BallSystem
from repro.pvm.machine import Machine
from repro.workloads import clustered, uniform_cube


def knn_balls(n: int, d: int, k: int, seed: int) -> BallSystem:
    return brute_force_knn(uniform_cube(n, d, seed), k).to_ball_system()


class TestQueryCorrectness:
    @pytest.mark.parametrize("d", [2, 3])
    @pytest.mark.parametrize("k", [1, 3])
    def test_matches_direct_containment(self, d, k):
        balls = knn_balls(500, d, k, seed=d * 10 + k)
        structure = NeighborhoodQueryStructure(balls, seed=1)
        rng = np.random.default_rng(2)
        queries = rng.random((100, d))
        for q in queries:
            got = np.sort(structure.query(q))
            want = np.sort(balls.covering(q))
            np.testing.assert_array_equal(got, want)

    def test_query_at_ball_centers(self):
        """Each center is covered by its own ball's neighbors' balls etc.;
        compare against direct computation exactly."""
        balls = knn_balls(300, 2, 2, seed=3)
        structure = NeighborhoodQueryStructure(balls, seed=4)
        for i in range(0, 300, 37):
            got = np.sort(structure.query(balls.centers[i]))
            want = np.sort(balls.covering(balls.centers[i]))
            np.testing.assert_array_equal(got, want)

    def test_closed_variant(self):
        balls = BallSystem(np.array([[0.0, 0.0]]), np.array([1.0]))
        structure = NeighborhoodQueryStructure(balls, seed=0)
        assert structure.query(np.array([1.0, 0.0])).size == 0
        assert structure.query(np.array([1.0, 0.0]), closed=True).size == 1

    def test_query_many_matches_single_queries(self):
        balls = knn_balls(400, 2, 1, seed=5)
        structure = NeighborhoodQueryStructure(balls, seed=6)
        queries = np.random.default_rng(7).random((80, 2))
        rows, ids = structure.query_many(queries)
        per_point = {i: set() for i in range(80)}
        for r, b in zip(rows, ids):
            per_point[int(r)].add(int(b))
        for i, q in enumerate(queries):
            assert per_point[i] == set(structure.query(q).tolist())

    def test_inf_radius_ball_found_everywhere(self):
        centers = np.random.default_rng(8).random((50, 2))
        radii = np.full(50, 0.01)
        radii[7] = np.inf
        structure = NeighborhoodQueryStructure(BallSystem(centers, radii), seed=9)
        assert 7 in structure.query(np.array([100.0, 100.0])).tolist()


class TestStructureShape:
    def test_height_logarithmic(self):
        """Lemma 3.1: height O(log n) — compare against the recurrence."""
        heights = {}
        for n in (256, 1024, 4096):
            balls = knn_balls(n, 2, 1, seed=n)
            s = NeighborhoodQueryStructure(balls, seed=1)
            heights[n] = s.stats.height
        # height grows by O(1) per doubling: going 256 -> 4096 (x16 = 4
        # doublings) should add a bounded number of levels
        assert heights[4096] - heights[256] <= 4 * 4
        assert heights[4096] >= heights[256]

    def test_space_linear(self):
        """Lemma 3.1: total stored balls O(n) despite duplication."""
        for n in (512, 2048):
            balls = knn_balls(n, 2, 1, seed=n + 1)
            s = NeighborhoodQueryStructure(balls, seed=2)
            assert s.stats.space_ratio <= 3.0

    def test_m0_condition_from_recurrence(self):
        """The paper's m0 threshold makes the shrink condition hold; our
        smaller practical default relies on the explicit progress check
        instead, so here we verify the threshold itself is correct."""
        cfg = QueryConfig()
        mu = cfg.mu(2)
        m0_star = min_valid_m0(0.8, mu)
        assert m0_star ** (mu - 1.0) <= (1 - 0.8) / 2 + 1e-12
        assert (m0_star - 1) ** (mu - 1.0) > (1 - 0.8) / 2

    def test_small_input_single_leaf(self):
        balls = knn_balls(10, 2, 1, seed=1)
        s = NeighborhoodQueryStructure(balls, seed=1)
        assert s.root.is_leaf
        assert s.stats.height == 0

    def test_duplications_counted(self):
        balls = knn_balls(1000, 2, 1, seed=11)
        s = NeighborhoodQueryStructure(balls, seed=12)
        assert s.stats.duplications == s.stats.stored_balls - len(balls) or s.stats.duplications >= 0

    def test_fallback_on_degenerate_system(self):
        """All-identical centers: build must terminate with a fallback leaf."""
        balls = BallSystem(np.ones((200, 2)), np.full(200, 0.5))
        s = NeighborhoodQueryStructure(balls, seed=13, config=QueryConfig(max_attempts=4))
        assert s.stats.fallback_leaves >= 1
        got = s.query(np.array([1.0, 1.0]))
        assert got.shape[0] == 200

    def test_clustered_workload(self):
        balls = brute_force_knn(clustered(800, 2, 14), 1).to_ball_system()
        s = NeighborhoodQueryStructure(balls, seed=15)
        q = np.random.default_rng(16).random((30, 2))
        for point in q:
            np.testing.assert_array_equal(
                np.sort(s.query(point)), np.sort(balls.covering(point))
            )


class TestParallelConstructionCost:
    def test_depth_logarithmic_in_n(self):
        """Theorem 3.1: parallel build depth O(log n)."""
        depths = {}
        for n in (512, 4096):
            balls = knn_balls(n, 2, 1, seed=n + 7)
            m = Machine()
            NeighborhoodQueryStructure(balls, machine=m, seed=3)
            depths[n] = m.total.depth
        # 3 extra doublings should multiply depth by far less than n ratio (8x)
        assert depths[4096] <= depths[512] * 3

    def test_work_near_linear(self):
        works = {}
        for n in (512, 4096):
            balls = knn_balls(n, 2, 1, seed=n + 9)
            m = Machine()
            NeighborhoodQueryStructure(balls, machine=m, seed=4)
            works[n] = m.total.work
        assert works[4096] <= works[512] * 8 * 4  # O(n log n) at worst

    def test_query_cost_charged(self):
        balls = knn_balls(800, 2, 1, seed=21)
        m = Machine()
        s = NeighborhoodQueryStructure(balls, machine=m, seed=5)
        before = m.total
        s.query_many(np.random.default_rng(6).random((50, 2)))
        after = m.total
        assert after.depth > before.depth
        assert after.work > before.work
