"""Property-based end-to-end tests: hypothesis drives whole algorithms.

These are the strongest invariants in the suite: for *arbitrary* small
point multisets (duplicates, collinear degeneracies, wild coordinate
scales — whatever hypothesis invents), the parallel algorithms must agree
with brute force, the query structure must agree with direct containment,
and marching must find exactly the containment pairs.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import brute_force_knn, kdtree_knn
from repro.core import (
    NeighborhoodQueryStructure,
    QueryConfig,
    march_balls,
    parallel_nearest_neighborhood,
    simple_parallel_dnc,
)
from repro.core.fast_dnc import FastDnCConfig
from repro.geometry.balls import BallSystem

# small point clouds with adversarial freedom: repeats, tight clusters,
# large offsets; coordinates kept within a sane float range
coords = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, width=32)


@st.composite
def point_sets(draw, min_points: int = 2, max_points: int = 60, dims=(1, 2, 3)):
    d = draw(st.sampled_from(dims))
    n = draw(st.integers(min_points, max_points))
    base = draw(
        st.lists(st.tuples(*[coords] * d), min_size=n, max_size=n)
    )
    pts = np.array(base, dtype=np.float64)
    # optionally duplicate some rows to create exact ties
    if draw(st.booleans()) and n >= 4:
        src = draw(st.integers(0, n - 1))
        dst = draw(st.integers(0, n - 1))
        pts[dst] = pts[src]
    return pts


end_to_end_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestFastDnCProperty:
    @given(point_sets(), st.integers(1, 4), st.integers(0, 3))
    @end_to_end_settings
    def test_matches_brute_force(self, pts, k, seed):
        k = min(k, pts.shape[0] - 1)
        if k < 1:
            return
        res = parallel_nearest_neighborhood(pts, k, seed=seed)
        ref = brute_force_knn(pts, k)
        assert res.system.same_distances(ref, rtol=1e-7, atol=1e-7)

    @given(point_sets(max_points=40), st.integers(0, 3))
    @end_to_end_settings
    def test_small_base_case_config(self, pts, seed):
        cfg = FastDnCConfig(base_case_size=8, base_factor=2)
        res = parallel_nearest_neighborhood(pts, 1, seed=seed, config=cfg)
        assert res.system.same_distances(brute_force_knn(pts, 1), rtol=1e-7, atol=1e-7)

    @given(point_sets(max_points=40))
    @end_to_end_settings
    def test_partition_tree_invariant(self, pts):
        res = parallel_nearest_neighborhood(pts, 1, seed=0)
        assert res.tree.check_partition()

    @given(point_sets(max_points=40))
    @end_to_end_settings
    def test_cost_is_positive_and_finite(self, pts):
        res = parallel_nearest_neighborhood(pts, 1, seed=0)
        assert res.cost.depth > 0 and np.isfinite(res.cost.depth)
        assert res.cost.work >= pts.shape[0]


class TestSimpleDnCProperty:
    @given(point_sets(), st.integers(1, 3), st.integers(0, 3))
    @end_to_end_settings
    def test_matches_brute_force(self, pts, k, seed):
        k = min(k, pts.shape[0] - 1)
        if k < 1:
            return
        res = simple_parallel_dnc(pts, k, seed=seed)
        assert res.system.same_distances(brute_force_knn(pts, k), rtol=1e-7, atol=1e-7)


class TestKDTreeProperty:
    @given(point_sets(), st.integers(1, 4))
    @end_to_end_settings
    def test_matches_brute_force(self, pts, k):
        k = min(k, pts.shape[0] - 1)
        if k < 1:
            return
        assert kdtree_knn(pts, k).same_distances(brute_force_knn(pts, k), rtol=1e-7, atol=1e-7)


@st.composite
def ball_systems(draw, max_balls: int = 50):
    d = draw(st.sampled_from((2, 3)))
    n = draw(st.integers(2, max_balls))
    centers = np.array(
        draw(st.lists(st.tuples(*[coords] * d), min_size=n, max_size=n)),
        dtype=np.float64,
    )
    radii = np.array(
        draw(st.lists(st.floats(0.01, 50.0), min_size=n, max_size=n)),
        dtype=np.float64,
    )
    return BallSystem(centers, radii)


class TestQueryStructureProperty:
    @given(ball_systems(), st.integers(0, 3))
    @end_to_end_settings
    def test_query_equals_direct_containment(self, balls, seed):
        structure = NeighborhoodQueryStructure(
            balls, seed=seed, config=QueryConfig(base_case_size=8)
        )
        rng = np.random.default_rng(seed)
        queries = rng.uniform(-120, 120, size=(20, balls.dim))
        for q in queries:
            np.testing.assert_array_equal(
                np.sort(structure.query(q)), np.sort(balls.covering(q))
            )

    @given(ball_systems())
    @end_to_end_settings
    def test_query_at_centers(self, balls):
        structure = NeighborhoodQueryStructure(balls, seed=1, config=QueryConfig(base_case_size=8))
        for i in range(0, len(balls), 7):
            q = balls.centers[i]
            np.testing.assert_array_equal(
                np.sort(structure.query(q)), np.sort(balls.covering(q))
            )


class TestMarchingProperty:
    @given(point_sets(min_points=20, max_points=60, dims=(2,)), st.integers(0, 3))
    @end_to_end_settings
    def test_march_finds_exact_containment_pairs(self, pts, seed):
        res = parallel_nearest_neighborhood(pts, 1, seed=seed)
        rng = np.random.default_rng(seed)
        nb = 6
        centers = pts[rng.integers(0, pts.shape[0], nb)] + rng.standard_normal((nb, pts.shape[1]))
        radii = rng.uniform(0.1, 30.0, nb)
        result = march_balls(res.tree, pts, centers, radii)
        assert result.succeeded
        got = {(int(b), int(p)) for b, p in zip(result.ball_rows, result.point_ids)}
        diff = pts[None, :, :] - centers[:, None, :]
        sq = np.einsum("bnd,bnd->bn", diff, diff)
        want = {(int(b), int(p)) for b, p in zip(*np.nonzero(sq < np.square(radii)[:, None]))}
        assert got == want
