"""The Unit Time Separator Algorithm and its retry loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.spheres import Sphere
from repro.pvm.machine import Machine
from repro.separators.quality import is_good_point_split, default_delta
from repro.separators.unit_time import SeparatorFailure, UnitTimeSeparator, find_good_separator
from repro.workloads import clustered, uniform_cube


class TestUnitTimeSeparator:
    def test_attempt_charges_constant_depth(self, points2d):
        m = Machine()
        unit = UnitTimeSeparator(points2d, seed=0)
        unit.attempt(m)
        d1 = m.total.depth
        unit.attempt(m)
        assert m.total.depth == pytest.approx(2 * d1)
        assert m.counters["separator_attempts"] == 2

    def test_attempt_work_linear_in_n(self):
        costs = {}
        for n in (500, 2000):
            m = Machine()
            UnitTimeSeparator(uniform_cube(n, 2, 3), seed=1).attempt(m)
            costs[n] = m.total
        assert costs[2000].work == pytest.approx(4 * costs[500].work, rel=0.1)
        assert costs[2000].depth == costs[500].depth

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            UnitTimeSeparator(np.zeros((1, 2)))

    def test_refresh_reseeds_sampler(self, points2d):
        unit = UnitTimeSeparator(points2d, seed=2)
        before = unit._sampler
        unit.refresh()
        assert unit._sampler is not before


class TestFindGoodSeparator:
    @pytest.mark.parametrize("d", [2, 3])
    def test_returns_good_split(self, d):
        pts = uniform_cube(1000, d, 5)
        m = Machine()
        sep, attempts = find_good_separator(pts, m, seed=6)
        assert attempts >= 1
        assert is_good_point_split(sep, pts, default_delta(d, 0.05))

    def test_attempts_usually_small(self):
        """Success probability is constant, so attempts are geometric."""
        attempt_counts = []
        for seed in range(20):
            pts = uniform_cube(600, 2, 100 + seed)
            m = Machine()
            _, attempts = find_good_separator(pts, m, seed=seed)
            attempt_counts.append(attempts)
        assert np.median(attempt_counts) <= 3

    def test_clustered_inputs(self):
        pts = clustered(800, 2, 8)
        m = Machine()
        sep, _ = find_good_separator(pts, m, seed=9)
        assert is_good_point_split(sep, pts, default_delta(2, 0.05))

    def test_identical_points_fail(self):
        pts = np.ones((100, 2))
        with pytest.raises(SeparatorFailure):
            find_good_separator(pts, Machine(), seed=0, max_attempts=8)

    def test_depth_proportional_to_attempts(self):
        pts = uniform_cube(500, 2, 10)
        m = Machine()
        _, attempts = find_good_separator(pts, m, seed=11)
        # each attempt charges the same constant depth
        m2 = Machine()
        UnitTimeSeparator(pts, seed=12).attempt(m2)
        per_attempt = m2.total.depth
        assert m.total.depth == pytest.approx(attempts * per_attempt)

    def test_custom_delta_respected(self):
        pts = uniform_cube(800, 2, 13)
        m = Machine()
        sep, _ = find_good_separator(pts, m, seed=14, delta=0.7)
        assert is_good_point_split(sep, pts, 0.7)

    def test_counter_bumped(self):
        pts = uniform_cube(300, 2, 15)
        m = Machine()
        find_good_separator(pts, m, seed=16)
        assert m.counters.get("separator_attempts", 0) >= 1

    def test_two_points(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        m = Machine()
        sep, _ = find_good_separator(pts, m, seed=17, delta=0.5)
        side = sep.side_of_points(pts)
        assert set(side.tolist()) == {-1, 1}
