"""The MTTV sphere separator: distributional quality and internal consistency."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import brute_force_knn
from repro.geometry.spheres import Hyperplane, Sphere
from repro.separators.greatcircle import random_great_circle, random_unit_vector
from repro.separators.mttv import MTTVSeparatorSampler, default_sample_size, mttv_separator
from repro.separators.quality import ball_split, default_delta, point_split
from repro.workloads import annulus, clustered, uniform_cube


class TestGreatCircle:
    def test_unit_vector_is_unit(self):
        v = random_unit_vector(np.random.default_rng(0), 5)
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_unit_vector_dim_validated(self):
        with pytest.raises(ValueError):
            random_unit_vector(np.random.default_rng(0), 0)

    def test_great_circle_has_zero_offset(self):
        c = random_great_circle(np.random.default_rng(1), 4)
        assert c.offset == 0.0

    def test_isotropy(self):
        """Mean of many normals is near zero (uniformity smoke test)."""
        rng = np.random.default_rng(2)
        vs = np.array([random_unit_vector(rng, 3) for _ in range(2000)])
        assert np.linalg.norm(vs.mean(axis=0)) < 0.08


class TestSamplerBasics:
    def test_draw_returns_separator(self, points2d):
        sampler = MTTVSeparatorSampler(points2d, seed=0)
        sep = sampler.draw()
        assert isinstance(sep, (Sphere, Hyperplane))
        assert sep.dim == 2

    def test_seeded_determinism(self, points2d):
        a = MTTVSeparatorSampler(points2d, seed=42).draw()
        b = MTTVSeparatorSampler(points2d, seed=42).draw()
        assert type(a) is type(b)
        if isinstance(a, Sphere):
            np.testing.assert_allclose(a.center, b.center)
            assert a.radius == b.radius

    def test_sample_size_variant(self, points2d):
        sampler = MTTVSeparatorSampler(points2d, seed=1, sample_size=32)
        assert isinstance(sampler.draw(), (Sphere, Hyperplane))

    def test_median_centerpoint_variant(self, points2d):
        sampler = MTTVSeparatorSampler(points2d, seed=2, centerpoint="median")
        assert isinstance(sampler.draw(), (Sphere, Hyperplane))

    def test_unknown_centerpoint_rejected(self, points2d):
        with pytest.raises(ValueError):
            MTTVSeparatorSampler(points2d, centerpoint="karcher")

    def test_default_sample_size_constant_in_n(self):
        assert default_sample_size(2) == default_sample_size(2)
        assert default_sample_size(3) > default_sample_size(2)

    def test_convenience_function(self, points3d):
        sep = mttv_separator(points3d, seed=3)
        assert sep.dim == 3


class TestSplitQuality:
    """The separator theorem's delta-split, checked in distribution."""

    @pytest.mark.parametrize("d", [2, 3])
    @pytest.mark.parametrize("workload", [uniform_cube, clustered, annulus])
    def test_median_split_ratio_below_target(self, d, workload):
        pts = workload(1500, d, 17)
        sampler = MTTVSeparatorSampler(pts, seed=5)
        ratios = []
        for _ in range(30):
            sep = sampler.draw()
            ratios.append(point_split(sep, pts).split_ratio)
        target = default_delta(d, 0.049)
        # at least half the draws meet the paper's target ratio
        assert np.median(ratios) <= target

    def test_explicit_matches_transform_classification(self, points2d):
        """The pulled-back separator classifies exactly like the sign test
        through the conformal transform (up to a global flip)."""
        sampler = MTTVSeparatorSampler(points2d, seed=7)
        rng = sampler.rng
        from repro.separators.greatcircle import random_great_circle as rgc

        for _ in range(10):
            circle = rgc(rng, 3)
            try:
                original = sampler.map.pull_back_circle(circle)
                from repro.geometry.stereographic import circle_to_separator

                sep = circle_to_separator(original)
            except ValueError:
                continue
            via_transform = sampler.side_via_transform(points2d, circle)
            explicit = sep.side_of_points(points2d)
            agree = (via_transform == explicit).mean()
            assert agree > 0.99 or agree < 0.01


class TestIntersectionNumberScaling:
    def test_sublinear_cuts_on_knn_balls(self):
        """iota ~ n^{(d-1)/d}: doubling n should far less than double iota."""
        rng_seed = 23
        iotas = {}
        for n in (1000, 4000):
            pts = uniform_cube(n, 2, rng_seed)
            balls = brute_force_knn(pts, 1).to_ball_system()
            sampler = MTTVSeparatorSampler(pts, seed=31)
            vals = [ball_split(sampler.draw(), balls).intersection_number for _ in range(20)]
            iotas[n] = float(np.median(vals))
        # sqrt scaling predicts x2 when n x4; allow generous slack vs linear (x4)
        assert iotas[4000] <= iotas[1000] * 3.0
        assert iotas[4000] >= 1.0
