"""Simple Parallel Divide-and-Conquer (Section 5): exactness and the
O(log^2 n) cost signature."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import brute_force_knn
from repro.core.fast_dnc import parallel_nearest_neighborhood
from repro.core.simple_dnc import SimpleDnCConfig, simple_parallel_dnc
from repro.pvm.machine import Machine
from repro.workloads import clustered, collinear, gaussian, uniform_cube, with_duplicates


class TestExactness:
    @pytest.mark.parametrize("workload", [uniform_cube, clustered, gaussian])
    @pytest.mark.parametrize("d", [2, 3])
    def test_matches_brute_force(self, workload, d):
        pts = workload(500, d, 30 + d)
        res = simple_parallel_dnc(pts, 2, seed=1)
        assert res.system.same_distances(brute_force_knn(pts, 2))

    @pytest.mark.parametrize("k", [1, 3, 6])
    def test_k_sweep(self, k):
        pts = uniform_cube(400, 2, 31)
        res = simple_parallel_dnc(pts, k, seed=2)
        assert res.system.same_distances(brute_force_knn(pts, k))

    def test_duplicates(self):
        pts = with_duplicates(uniform_cube(300, 2, 32), 0.4, 33)
        res = simple_parallel_dnc(pts, 1, seed=3)
        assert res.system.same_distances(brute_force_knn(pts, 1))

    def test_all_identical(self):
        pts = np.zeros((150, 2))
        res = simple_parallel_dnc(pts, 1, seed=4)
        assert res.system.same_distances(brute_force_knn(pts, 1))
        assert res.stats.degenerate_cuts >= 1

    def test_collinear(self):
        pts = collinear(250, 3, 34)
        res = simple_parallel_dnc(pts, 2, seed=5)
        assert res.system.same_distances(brute_force_knn(pts, 2))

    def test_tiny_inputs(self):
        for n in (1, 2, 4):
            pts = uniform_cube(n, 2, 40 + n)
            res = simple_parallel_dnc(pts, 1, seed=6)
            assert res.system.same_distances(brute_force_knn(pts, 1))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            simple_parallel_dnc(uniform_cube(10, 2, 0), 0)

    def test_fixed_axis_config(self):
        cfg = SimpleDnCConfig(rotate_axes=False)
        pts = uniform_cube(400, 2, 35)
        res = simple_parallel_dnc(pts, 1, seed=7, config=cfg)
        assert res.system.same_distances(brute_force_knn(pts, 1))


class TestCostSignature:
    def test_median_cuts_give_balanced_tree(self):
        pts = uniform_cube(1024, 2, 36)
        res = simple_parallel_dnc(pts, 1, seed=8)
        # 1024 points, base 64: ceil(log2(1024/64)) = 4 levels minimum
        assert 4 <= res.tree.height() <= 7

    def test_depth_grows_superlinearly_in_log_n(self):
        """The per-doubling depth increment itself grows — the log^2 wedge."""
        depths = {}
        for n in (1024, 4096, 16384):
            pts = uniform_cube(n, 3, n + 2)
            res = simple_parallel_dnc(pts, 1, seed=9)
            depths[n] = res.cost.depth
        inc1 = depths[4096] - depths[1024]
        inc2 = depths[16384] - depths[4096]
        assert inc2 > inc1  # increments increase => superlogarithmic

    def test_fast_dnc_shallower_at_scale(self):
        """The headline comparison: sphere DnC beats hyperplane DnC in depth."""
        pts = uniform_cube(8192, 3, 37)
        fast = parallel_nearest_neighborhood(pts, 1, seed=10)
        simple = simple_parallel_dnc(pts, 1, seed=10)
        assert fast.cost.depth < simple.cost.depth

    def test_machine_passthrough(self):
        m = Machine()
        res = simple_parallel_dnc(uniform_cube(200, 2, 38), 1, machine=m, seed=11)
        assert res.machine is m and m.total.work > 0

    def test_stats_straddlers_recorded(self):
        pts = uniform_cube(800, 2, 39)
        res = simple_parallel_dnc(pts, 1, seed=12)
        assert len(res.stats.straddler_fraction) > 0
