"""Recursive vs frontier engine: identical runs from identical seeds.

The frontier engine (:mod:`repro.core.frontier`) re-executes the divide
and conquer level-synchronously with batched numpy passes, but its
contract is *indistinguishability*: byte-identical neighbor arrays, an
identical partition tree, an exactly equal (depth, work) ledger, and equal
event counters — on every workload, including the punt paths.  These
tests are the tier-1 guarantee of that contract.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core import ENGINES
from repro.core.fast_dnc import FastDnCConfig, parallel_nearest_neighborhood
from repro.core.simple_dnc import SimpleDnCConfig, simple_parallel_dnc
from repro.workloads import clustered, collinear, uniform_cube, with_duplicates


def _run(method: str, points, k: int, seed: int, **cfg):
    if method == "fast":
        return parallel_nearest_neighborhood(
            points, k, seed=seed, config=FastDnCConfig(**cfg)
        )
    return simple_parallel_dnc(points, k, seed=seed, config=SimpleDnCConfig(**cfg))


def _tree_shape(node):
    """(size, is_leaf) per node in preorder — the tree's full shape."""
    return [(n.size, n.is_leaf) for n in node.nodes()]


def _assert_identical_runs(method: str, points, k: int, seed: int, **cfg):
    rec = _run(method, points, k, seed, engine="recursive", **cfg)
    fro = _run(method, points, k, seed, engine="frontier", **cfg)
    np.testing.assert_array_equal(
        rec.system.neighbor_indices, fro.system.neighbor_indices
    )
    np.testing.assert_array_equal(
        rec.system.neighbor_sq_dists, fro.system.neighbor_sq_dists
    )
    # the ledger matches exactly — depth AND work, no tolerance
    assert rec.cost.depth == fro.cost.depth
    assert rec.cost.work == fro.cost.work
    assert rec.machine.counters == fro.machine.counters
    assert _tree_shape(rec.tree) == _tree_shape(fro.tree)
    assert fro.tree.check_partition()
    return rec, fro


WORKLOADS = [
    ("uniform2d", lambda: uniform_cube(500, 2, seed=1)),
    ("uniform3d", lambda: uniform_cube(400, 3, seed=2)),
    ("duplicates", lambda: with_duplicates(uniform_cube(300, 2, seed=3), 0.5, seed=3)),
    ("clustered", lambda: clustered(400, 2, seed=4)),
    ("collinear", lambda: collinear(260, 2, seed=5)),
]


class TestEngineEquivalence:
    @pytest.mark.parametrize("method", ["fast", "simple"])
    @pytest.mark.parametrize("name,make", WORKLOADS, ids=[w[0] for w in WORKLOADS])
    def test_identical_runs(self, method, name, make):
        _assert_identical_runs(method, make(), 2, seed=13)

    @pytest.mark.parametrize("k", [1, 3])
    def test_identical_runs_over_k(self, k):
        _assert_identical_runs("fast", uniform_cube(400, 2, seed=7), k, seed=29)

    def test_identical_under_forced_iota_punts(self):
        rec, _ = _assert_identical_runs(
            "fast", uniform_cube(400, 2, seed=8), 1, seed=31, iota_factor=1e-9
        )
        assert rec.stats.punts_iota > 0

    def test_identical_under_forced_marching_punts(self):
        rec, _ = _assert_identical_runs(
            "fast", uniform_cube(400, 2, seed=9), 1, seed=37, active_factor=1e-9
        )
        assert rec.stats.punts_marching > 0

    def test_identical_stats_multisets(self):
        """Series observed in different orders must still agree as multisets."""
        pts = uniform_cube(500, 2, seed=10)
        rec = _run("fast", pts, 2, 41, engine="recursive")
        fro = _run("fast", pts, 2, 41, engine="frontier")
        assert sorted(rec.stats.straddler_fraction) == sorted(fro.stats.straddler_fraction)
        assert sorted(map(tuple, ((m, tuple(a)) for m, a in rec.stats.marching_level_active))) == \
            sorted(map(tuple, ((m, tuple(a)) for m, a in fro.stats.marching_level_active)))
        assert rec.stats.punts == fro.stats.punts

    def test_single_point_and_tiny_inputs(self):
        # n=1 keeps the (-1, inf) sentinel; all sizes agree across engines
        for n in (1, 2, 5):
            pts = uniform_cube(max(n, 2), 2, seed=n)[:n]
            rec, _ = _assert_identical_runs("fast", pts, 1, seed=3)
            if n == 1:
                assert rec.system.neighbor_indices[0, 0] == -1


class TestEngineAPI:
    def test_engines_tuple(self):
        assert ENGINES == ("recursive", "frontier", "frontier-mp")

    def test_config_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine"):
            FastDnCConfig(engine="warp")
        with pytest.raises(ValueError, match="engine"):
            SimpleDnCConfig(engine="")

    def test_api_engine_kwarg_equivalence(self):
        pts = uniform_cube(300, 2, seed=11)
        rec = repro.all_knn(pts, 2, method="fast", seed=43, engine="recursive")
        fro = repro.all_knn(pts, 2, method="fast", seed=43, engine="frontier")
        np.testing.assert_array_equal(rec.indices, fro.indices)
        np.testing.assert_array_equal(rec.sq_dists, fro.sq_dists)
        assert rec.cost.depth == fro.cost.depth
        assert rec.cost.work == fro.cost.work

    def test_api_engine_overrides_config(self):
        pts = uniform_cube(200, 2, seed=12)
        cfg = FastDnCConfig(engine="recursive")
        res = repro.all_knn(pts, 1, method="fast", config=cfg, seed=5, engine="frontier")
        ref = repro.all_knn(pts, 1, method="fast", seed=5, engine="frontier")
        np.testing.assert_array_equal(res.indices, ref.indices)

    def test_build_index_engine(self):
        pts = uniform_cube(200, 2, seed=13)
        a = repro.build_index(pts, 2, seed=17, engine="recursive")
        b = repro.build_index(pts, 2, seed=17, engine="frontier")
        qa = a.query(pts[:7])
        qb = b.query(pts[:7])
        np.testing.assert_array_equal(qa[0], qb[0])
        np.testing.assert_array_equal(qa[1], qb[1])


class TestFrontierObservability:
    def test_frontier_level_spans(self):
        pts = uniform_cube(400, 2, seed=14)
        _, tracer = repro.run_traced(pts, 1, method="fast", seed=47, engine="frontier")
        spans = [s for _, s in tracer.root.walk()]
        level_spans = [s for s in spans if s.name == "frontier.level"]
        assert level_spans, "frontier runs must emit frontier.level spans"
        phases = {s.attrs.get("phase") for s in level_spans}
        assert phases >= {"build", "correct"}
        for s in level_spans:
            assert "level" in s.attrs and "segments" in s.attrs
            assert s.attrs["segments"] >= 1
        correct = [s for s in level_spans if s.attrs.get("phase") == "correct"]
        assert all("straddlers" in s.attrs for s in correct)
        # per-node spans are a recursive-engine concept
        assert not any(s.name == "fast.node" for s in spans)

    def test_recursive_node_spans_unchanged(self):
        pts = uniform_cube(300, 2, seed=15)
        _, tracer = repro.run_traced(pts, 1, method="fast", seed=53, engine="recursive")
        spans = [s for _, s in tracer.root.walk()]
        assert any(s.name == "fast.node" for s in spans)
        assert not any(s.name == "frontier.level" for s in spans)

    def test_sections_present_in_both_engines(self):
        """Phase attribution (divide/base/correct) exists for both engines."""
        pts = uniform_cube(400, 2, seed=16)
        for engine in ENGINES:
            res = _run("fast", pts, 1, 59, engine=engine)
            assert {"divide", "base", "correct"} <= set(res.machine.sections)
