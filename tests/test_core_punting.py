"""Punting Lemma processes: (a,b)-tree tails and the duplication process."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.bounds import duplication_g, punting_tail_bound
from repro.core.punting import (
    ab_tree_trials,
    simulate_ab_tree,
    simulate_duplication,
)


class TestABTreeSimulator:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            simulate_ab_tree(100)
        with pytest.raises(ValueError):
            simulate_ab_tree(1)

    def test_deterministic_with_seed(self):
        assert simulate_ab_tree(256, 7) == simulate_ab_tree(256, 7)

    def test_zero_b_gives_zero_depth(self):
        assert simulate_ab_tree(64, 0, b=lambda m: 0.0) == 0.0

    def test_constant_a_gives_a_log_n(self):
        """(C, C)-tree: every node weighs C, so RD = C * log2 n exactly."""
        rd = simulate_ab_tree(1024, 1, a=lambda m: 3.0, b=lambda m: 3.0)
        assert rd == pytest.approx(3.0 * 10)

    def test_root_always_bad(self):
        """A (0, log m)-tree where only the root can be bad: weight is
        either 0 or log2 n."""
        vals = {simulate_ab_tree(2, seed) for seed in range(50)}
        assert vals <= {0.0, 1.0}
        assert len(vals) == 2  # both outcomes observed at n=2 (p = 1/2)

    def test_rd_nonnegative_and_bounded(self):
        for seed in range(10):
            rd = simulate_ab_tree(512, seed)
            assert 0 <= rd <= sum(math.log2(512 >> lvl) for lvl in range(9))


class TestPuntingLemmaEmpirically:
    def test_mean_rd_is_order_log_n(self):
        """E[RD(n)]: each level contributes ~ (2^l / m) * log m ... the sum
        is O(log n); check it stays below a small multiple of log2 n."""
        for n in (256, 4096):
            trials = ab_tree_trials(n, 60, 5)
            assert trials.mean() <= 3.0 * math.log2(n)

    def test_tail_below_lemma_bound(self):
        """Lemma 4.1: empirical Pr[RD > 2c log n] <= n A e^{-c log n},
        checked where the bound is non-vacuous."""
        n = 1024
        trials = ab_tree_trials(n, 400, 8)
        for c in (1.5, 2.0, 3.0):
            threshold = 2 * c * math.log2(n)
            empirical = float((trials > threshold).mean())
            bound = punting_tail_bound(n, c)
            assert empirical <= bound + 0.02  # Monte-Carlo slack

    def test_corollary_constant_shift(self):
        """(C, log m)-tree sits about C*log2 n above the (0, log m)-tree."""
        n = 1024
        base = ab_tree_trials(n, 80, 9).mean()
        shifted = ab_tree_trials(n, 80, 9, a=lambda m: 2.0).mean()
        # bad nodes take b(m) *instead of* a(m), so the shift is C times the
        # number of good nodes on the maximizing path: strictly between
        # 1*log2 n and 2*log2 n here
        assert shifted >= base + 1.0 * math.log2(n)
        assert shifted <= base + 2.0 * math.log2(n) + 1e-9


class TestDuplicationProcess:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            simulate_duplication(100, 5, alpha=1.5)
        with pytest.raises(ValueError):
            simulate_duplication(100, 5, adversary="chaotic")

    def test_trace_structure(self):
        trace = simulate_duplication(1000, 8, 1, alpha=0.9)
        assert trace.level_totals[0] == 1000
        assert trace.leaf_total > 0

    def test_no_duplication_conserves_plus_alpha_growth(self):
        """With beta huge (dup prob ~ 0), level totals grow only by the
        w^alpha correction terms."""
        trace = simulate_duplication(10_000, 6, 2, alpha=0.5, beta=50.0)
        assert trace.duplications == 0
        for a, b in zip(trace.level_totals, trace.level_totals[1:]):
            assert b <= a + len(trace.level_totals) * a**0.5 + a * 0.1

    def test_always_duplicate_doubles(self):
        """beta = 0 makes every node duplicate: totals double each level."""
        trace = simulate_duplication(100.0, 4, 3, alpha=0.9, beta=0.0, w_bar=0.0)
        np.testing.assert_allclose(
            trace.level_totals, [100 * 2**i for i in range(len(trace.level_totals))]
        )

    @pytest.mark.parametrize("adversary", ["half", "extreme", "random"])
    def test_leaf_total_below_lemma_envelope(self, adversary):
        """Lemma 6.5: X(W, K) = O(g(W) log W) with high probability."""
        W, K, alpha = 4000.0, 10, 0.9
        bound = duplication_g(W, K, alpha) * math.log(W)
        bad = 0
        for seed in range(30):
            trace = simulate_duplication(W, K, seed, alpha=alpha, adversary=adversary)
            if trace.leaf_total > bound:
                bad += 1
        assert bad <= 1  # the lemma's O(1/W^2) failure mass

    def test_extreme_adversary_handles_empty_children(self):
        trace = simulate_duplication(100.0, 6, 4, alpha=0.8, adversary="extreme")
        assert trace.leaf_total > 0
