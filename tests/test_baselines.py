"""Baselines: brute force (cross-checked against scipy), kd-tree, grid."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.spatial import cKDTree

from repro.baselines import KDTree, brute_force_knn, grid_knn, kdtree_knn
from repro.pvm.machine import Machine
from repro.workloads import clustered, collinear, gaussian, uniform_cube, with_duplicates


def scipy_reference(pts: np.ndarray, k: int) -> np.ndarray:
    """Sorted squared k-NN distances per point via scipy (independent oracle)."""
    tree = cKDTree(pts)
    dists, _ = tree.query(pts, k=k + 1)
    return np.square(dists[:, 1:])


class TestBruteForce:
    @pytest.mark.parametrize("d", [1, 2, 3, 5])
    def test_against_scipy(self, d):
        pts = uniform_cube(300, d, d)
        out = brute_force_knn(pts, 3)
        np.testing.assert_allclose(out.neighbor_sq_dists, scipy_reference(pts, 3), rtol=1e-9, atol=1e-12)

    def test_chunking_irrelevant(self):
        pts = uniform_cube(200, 2, 1)
        a = brute_force_knn(pts, 2, chunk=7)
        b = brute_force_knn(pts, 2, chunk=1000)
        np.testing.assert_array_equal(a.neighbor_indices, b.neighbor_indices)

    def test_k_too_large_pads(self):
        pts = uniform_cube(3, 2, 2)
        out = brute_force_knn(pts, 5)
        assert (out.neighbor_indices[:, 2:] == -1).all()
        assert np.isfinite(out.neighbor_sq_dists[:, :2]).all()

    def test_single_point(self):
        out = brute_force_knn(np.zeros((1, 2)), 1)
        assert out.neighbor_indices[0, 0] == -1

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            brute_force_knn(np.zeros((2, 2)), 0)

    def test_machine_charged_quadratic(self):
        m = Machine()
        brute_force_knn(uniform_cube(100, 2, 3), 1, machine=m)
        assert m.total.work == 100 * 100
        assert m.total.depth == 100

    def test_duplicates(self):
        pts = with_duplicates(uniform_cube(100, 2, 4), 0.5, 5)
        out = brute_force_knn(pts, 1)
        assert (out.neighbor_sq_dists[:, 0] >= 0).all()
        # many zero-distance nearest neighbors
        assert (out.neighbor_sq_dists[:, 0] == 0).sum() >= 40

    def test_sorted_rows(self):
        out = brute_force_knn(uniform_cube(150, 3, 6), 4)
        assert out.validate_sorted()


class TestKDTree:
    @pytest.mark.parametrize("workload", [uniform_cube, clustered, gaussian, collinear])
    @pytest.mark.parametrize("d", [2, 3])
    def test_matches_brute_force(self, workload, d):
        pts = workload(400, d, 10 + d)
        assert kdtree_knn(pts, 3).same_distances(brute_force_knn(pts, 3))

    @pytest.mark.parametrize("leaf_size", [1, 4, 64])
    def test_leaf_size_irrelevant_to_result(self, leaf_size):
        pts = uniform_cube(200, 2, 11)
        out = kdtree_knn(pts, 2, leaf_size=leaf_size)
        assert out.same_distances(brute_force_knn(pts, 2))

    def test_duplicates(self):
        pts = with_duplicates(uniform_cube(200, 2, 12), 0.4, 13)
        assert kdtree_knn(pts, 2).same_distances(brute_force_knn(pts, 2))

    def test_all_identical_points(self):
        pts = np.ones((50, 2))
        out = kdtree_knn(pts, 1)
        assert (out.neighbor_sq_dists[:, 0] == 0).all()

    def test_height_logarithmic(self):
        tree = KDTree(uniform_cube(4096, 2, 14), leaf_size=16)
        assert tree.height <= 12

    def test_query_separate_points(self):
        pts = uniform_cube(300, 2, 15)
        tree = KDTree(pts)
        queries = uniform_cube(50, 2, 16)
        idx, sq = tree.knn(queries, 1)
        ref = cKDTree(pts)
        d_ref, i_ref = ref.query(queries, k=1)
        np.testing.assert_allclose(np.sqrt(sq[:, 0]), d_ref, rtol=1e-9)
        np.testing.assert_array_equal(idx[:, 0], i_ref)

    def test_invalid_leaf_size(self):
        with pytest.raises(ValueError):
            KDTree(np.zeros((5, 2)), leaf_size=0)


class TestGrid:
    @pytest.mark.parametrize("workload", [uniform_cube, gaussian, clustered])
    def test_matches_brute_force(self, workload):
        pts = workload(350, 2, 20)
        assert grid_knn(pts, 2).same_distances(brute_force_knn(pts, 2))

    def test_3d(self):
        pts = uniform_cube(250, 3, 21)
        assert grid_knn(pts, 3).same_distances(brute_force_knn(pts, 3))

    def test_single_cell_degenerate(self):
        pts = np.random.default_rng(22).random((40, 2)) * 1e-9
        assert grid_knn(pts, 2).same_distances(brute_force_knn(pts, 2))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            grid_knn(np.zeros((3, 2)), 0)

    def test_single_point(self):
        out = grid_knn(np.zeros((1, 2)), 1)
        assert out.neighbor_indices[0, 0] == -1

    def test_duplicates(self):
        pts = with_duplicates(uniform_cube(150, 2, 23), 0.5, 24)
        assert grid_knn(pts, 1).same_distances(brute_force_knn(pts, 1))
