"""Large-scale stress runs (marked slow; excluded from the quick suite)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.spatial import cKDTree

from repro.core import knn_query, parallel_nearest_neighborhood
from repro.workloads import clustered, uniform_cube


@pytest.mark.slow
class TestScale:
    def test_fast_dnc_exact_at_32k(self):
        n = 1 << 15
        pts = uniform_cube(n, 2, 99)
        res = parallel_nearest_neighborhood(pts, 1, seed=100)
        d_ref, _ = cKDTree(pts).query(pts, k=2)
        np.testing.assert_allclose(res.system.radii, d_ref[:, 1], rtol=1e-9)
        # depth stays in the O(log n) regime
        assert res.cost.depth < 40 * np.log2(n)

    def test_clustered_16k_k4(self):
        n = 1 << 14
        pts = clustered(n, 2, 101)
        res = parallel_nearest_neighborhood(pts, 4, seed=102)
        d_ref, _ = cKDTree(pts).query(pts, k=5)
        np.testing.assert_allclose(
            np.sqrt(res.system.neighbor_sq_dists), d_ref[:, 1:], rtol=1e-9
        )

    def test_query_index_at_scale(self):
        n = 1 << 14
        pts = uniform_cube(n, 2, 103)
        res = parallel_nearest_neighborhood(pts, 1, seed=104)
        queries = np.random.default_rng(105).random((500, 2))
        idx, sq = knn_query(res.tree, pts, queries, 5)
        d_ref, _ = cKDTree(pts).query(queries, k=5)
        np.testing.assert_allclose(np.sqrt(sq), d_ref, rtol=1e-9)
