"""Online index updates: absorb-vs-rebuild equivalence and the Index facade.

The central guarantee under test: after ANY committed mutation batch, a
:class:`repro.core.online.MutableIndex` is *bit-identical* — neighbor
arrays, partition tree, (depth, work) ledger, machine counters and the
full metrics registry — to a from-scratch build of the resulting point
set with the same parameters (``equivalence_report`` returns no
mismatches).  The sweep covers churn fractions both sides of the punt
threshold, duplicate points, delete edge cases, multi-commit chains and
copy-on-write snapshot isolation.
"""

import numpy as np
import pytest

import repro
from repro.baselines import brute_force_knn
from repro.core.online import (
    CommitInfo,
    MutableIndex,
    equivalence_report,
    online_sample_size,
    tree_signature,
)
from repro.workloads import uniform_cube


def _assert_equivalent(index: MutableIndex) -> None:
    mismatches = equivalence_report(index, index.fresh_like())
    assert mismatches == [], "\n".join(mismatches)


class TestAbsorbEquivalence:
    @pytest.mark.parametrize("n_ins,n_del", [(6, 0), (0, 6), (5, 5), (16, 8)])
    def test_single_commit_bit_identical(self, n_ins, n_del):
        pts = uniform_cube(400, 2, seed=1)
        index = MutableIndex(pts, k=2, seed=9, churn_threshold=0.2)
        rng = np.random.default_rng(5)
        if n_ins:
            index.insert(rng.random((n_ins, 2)))
        if n_del:
            index.delete(rng.choice(400, size=n_del, replace=False))
        info = index.commit()
        assert not info.punted and not info.noop
        assert info.version == index.version == 1
        assert index.n == 400 + n_ins - n_del
        _assert_equivalent(index)

    @pytest.mark.parametrize("churn_batch", [4, 12, 40, 120])
    def test_churn_sweep_bit_identical(self, churn_batch):
        """Both absorb (low churn) and punt (high churn) paths are exact."""
        pts = uniform_cube(300, 2, seed=2)
        index = MutableIndex(pts, k=1, seed=3, churn_threshold=0.1)
        rng = np.random.default_rng(churn_batch)
        half = churn_batch // 2
        index.insert(rng.random((churn_batch - half, 2)))
        index.delete(rng.choice(300, size=half, replace=False))
        info = index.commit()
        assert info.punted == (info.churn > 0.1)
        _assert_equivalent(index)

    def test_multi_commit_chain(self):
        pts = uniform_cube(350, 2, seed=4)
        index = MutableIndex(pts, k=2, seed=11, churn_threshold=0.5)
        rng = np.random.default_rng(17)
        for round_ in range(3):
            index.insert(rng.random((4, 2)))
            index.delete(rng.choice(index.n, size=3, replace=False))
            info = index.commit()
            assert info.version == round_ + 1
            _assert_equivalent(index)

    def test_answers_stay_exact_after_commit(self):
        pts = uniform_cube(300, 3, seed=6)
        index = MutableIndex(pts, k=3, seed=7, churn_threshold=0.5)
        rng = np.random.default_rng(23)
        index.insert(rng.random((10, 3)))
        index.delete(rng.choice(300, size=10, replace=False))
        index.commit()
        ref = brute_force_knn(index.points, 3)
        np.testing.assert_array_equal(index.neighbor_indices, ref.neighbor_indices)
        np.testing.assert_array_equal(index.neighbor_sq_dists, ref.neighbor_sq_dists)

    def test_engine_agreement_after_commit(self):
        """The committed point set's answers agree with every offline engine."""
        pts = uniform_cube(260, 2, seed=8)
        index = MutableIndex(pts, k=2, seed=13, churn_threshold=0.5)
        rng = np.random.default_rng(29)
        index.insert(rng.random((8, 2)))
        index.delete(rng.choice(260, size=8, replace=False))
        index.commit()
        for engine, workers in (("recursive", None), ("frontier", None),
                                ("frontier-mp", 2)):
            res = repro.all_knn(index.points, 2, seed=99, engine=engine,
                                workers=workers)
            np.testing.assert_array_equal(res.indices, index.neighbor_indices)
            np.testing.assert_array_equal(res.sq_dists, index.neighbor_sq_dists)


class TestDuplicatesAndEdgeCases:
    def test_duplicate_point_inserts(self):
        pts = uniform_cube(200, 2, seed=10)
        index = MutableIndex(pts, k=2, seed=5, churn_threshold=0.5)
        dup = np.vstack([pts[3], pts[3], pts[50]])  # duplicates of live points
        index.insert(dup)
        info = index.commit()
        assert not info.noop
        _assert_equivalent(index)

    def test_negative_zero_folds(self):
        pts = uniform_cube(150, 2, seed=11)
        pts[0] = (0.0, 0.5)
        index = MutableIndex(pts, k=1, seed=2, churn_threshold=0.5)
        index.insert(np.array([[-0.0, 0.5]]))  # bit-different, same point
        index.commit()
        _assert_equivalent(index)

    def test_delete_validation(self):
        pts = uniform_cube(100, 2, seed=12)
        index = MutableIndex(pts, k=1, seed=1)
        with pytest.raises(ValueError, match="delete ids"):
            index.delete([100])
        with pytest.raises(ValueError, match="delete ids"):
            index.delete([-1])
        with pytest.raises(ValueError, match="duplicate"):
            index.delete([4, 4])
        index.delete([4])
        with pytest.raises(ValueError, match="pending"):
            index.delete([4])

    def test_insert_validation(self):
        pts = uniform_cube(100, 2, seed=13)
        index = MutableIndex(pts, k=1, seed=1)
        with pytest.raises(ValueError, match="dimension"):
            index.insert(np.zeros((2, 3)))

    def test_commit_cannot_empty_index(self):
        pts = uniform_cube(50, 2, seed=14)
        index = MutableIndex(pts, k=2, seed=1, churn_threshold=1.0)
        index.delete(np.arange(49))
        with pytest.raises(ValueError, match="n=1 <= k=2"):
            index.commit()

    def test_noop_commit(self):
        pts = uniform_cube(80, 2, seed=15)
        index = MutableIndex(pts, k=1, seed=1)
        before = tree_signature(index.tree)
        info = index.commit()
        assert info.noop and info.version == 0 and index.version == 0
        assert tree_signature(index.tree) == before

    def test_discard_pending(self):
        pts = uniform_cube(80, 2, seed=16)
        index = MutableIndex(pts, k=1, seed=1)
        index.insert(np.random.default_rng(0).random((3, 2)))
        index.delete([5])
        assert index.pending == (3, 1)
        index.discard_pending()
        assert index.pending == (0, 0)
        assert index.commit().noop


class TestPuntBoundary:
    def test_exactly_at_threshold_absorbs(self):
        # churn == threshold is NOT a punt (the punt condition is strict)
        pts = uniform_cube(200, 2, seed=17)
        index = MutableIndex(pts, k=1, seed=1, churn_threshold=0.05)
        index.insert(np.random.default_rng(1).random((10, 2)))  # churn = 10/200
        info = index.commit()
        assert info.churn == pytest.approx(0.05)
        assert not info.punted
        _assert_equivalent(index)

    def test_just_above_threshold_punts(self):
        pts = uniform_cube(200, 2, seed=18)
        index = MutableIndex(pts, k=1, seed=1, churn_threshold=0.05)
        index.insert(np.random.default_rng(2).random((11, 2)))  # churn = 11/200
        info = index.commit()
        assert info.churn > 0.05
        assert info.punted
        _assert_equivalent(index)

    def test_zero_threshold_always_punts(self):
        pts = uniform_cube(150, 2, seed=19)
        index = MutableIndex(pts, k=1, seed=1, churn_threshold=0.0)
        index.insert(np.random.default_rng(3).random((1, 2)))
        assert index.commit().punted
        _assert_equivalent(index)


class TestCopyOnWrite:
    def test_snapshot_survives_later_commits(self):
        pts = uniform_cube(220, 2, seed=20)
        index = MutableIndex(pts, k=2, seed=21, churn_threshold=0.5)
        snap0 = index.snapshot()
        pts0 = snap0.points.copy()
        idx0, sq0 = snap0.execute("knn", pts[:9], 2)
        rng = np.random.default_rng(31)
        for _ in range(2):
            index.insert(rng.random((5, 2)))
            index.delete(rng.choice(index.n, size=5, replace=False))
            index.commit()
        # the old snapshot is untouched: same arrays, same answers
        np.testing.assert_array_equal(snap0.points, pts0)
        idx0b, sq0b = snap0.execute("knn", pts[:9], 2)
        np.testing.assert_array_equal(idx0, idx0b)
        np.testing.assert_array_equal(sq0, sq0b)
        assert snap0.version == 0 and index.version == 2

    def test_snapshot_carries_version(self):
        pts = uniform_cube(120, 2, seed=22)
        index = MutableIndex(pts, k=1, seed=1, churn_threshold=1.0)
        assert index.snapshot().version == 0
        index.insert(np.random.default_rng(0).random((2, 2)))
        index.commit()
        assert index.snapshot().version == 1


class TestUpdateObservability:
    def test_update_stats_accumulate(self):
        pts = uniform_cube(200, 2, seed=23)
        index = MutableIndex(pts, k=1, seed=1, churn_threshold=0.04)
        rng = np.random.default_rng(7)
        index.insert(rng.random((4, 2)))
        index.commit()  # absorb (churn 2%)
        index.insert(rng.random((30, 2)))
        index.commit()  # punt (churn ~15%)
        stats = index.update_stats
        assert stats.commits == 2
        assert stats.absorbed == 1
        assert stats.punts == 1
        assert stats.inserted == 34
        assert stats.version == 2
        assert len(index.update_metrics.samples("update.commits_log")) == 2

    def test_commit_spans_when_tracing(self):
        pts = uniform_cube(200, 2, seed=24)
        index = MutableIndex(pts, k=1, seed=1, churn_threshold=0.04,
                             trace_commits=True)
        rng = np.random.default_rng(8)
        index.insert(rng.random((4, 2)))
        index.commit()
        names = [s.name for _, s in index.machine.tracer.root.walk()]
        assert "update.absorb" in names
        index.insert(rng.random((30, 2)))
        index.commit()
        names = [s.name for _, s in index.machine.tracer.root.walk()]
        assert "update.rebuild" in names

    def test_commit_ledger_matches_fresh_build(self):
        """index.machine.total after a commit IS the from-scratch ledger."""
        pts = uniform_cube(250, 2, seed=25)
        index = MutableIndex(pts, k=2, seed=41, churn_threshold=0.5)
        index.insert(np.random.default_rng(9).random((6, 2)))
        index.commit()
        fresh = index.fresh_like()
        assert index.cost.depth == fresh.cost.depth
        assert index.cost.work == fresh.cost.work

    def test_reuse_is_effective_at_low_churn(self):
        pts = uniform_cube(4000, 2, seed=26)
        index = MutableIndex(pts, k=1, seed=51)
        index.insert(np.random.default_rng(10).random((2, 2)))
        index.delete([17, 1234])
        info = index.commit()
        assert not info.punted
        assert info.reused_fraction > 0.5, (
            f"absorb reused only {info.reused_fraction:.1%} of points"
        )


class TestOnlineProfile:
    def test_online_sample_size(self):
        assert online_sample_size(2) == 16
        assert online_sample_size(3) == 25
        assert online_sample_size(1) == 9

    def test_commit_info_fields(self):
        info = CommitInfo(version=3, n=100, inserted=2, deleted=1,
                          churn=0.03, punted=False, reused_points=80)
        assert info.absorbed
        assert info.reused_fraction == pytest.approx(0.8)


class TestIndexFacade:
    def test_build_index_returns_versioned_handle(self):
        pts = uniform_cube(150, 2, seed=27)
        index = repro.build_index(pts, 2, seed=3)
        assert isinstance(index, repro.Index)
        assert index.version == 0 and index.pending == 0
        idx, sq = index.query(pts[:4])
        assert idx.shape == (4, 2)
        index.insert(np.random.default_rng(1).random((3, 2)))
        index.delete([0])
        assert index.pending == 4
        info = index.commit()
        assert isinstance(info, CommitInfo)
        assert index.version == 1 and index.pending == 0
        assert index.snapshot().version == 1

    def test_facade_commit_is_exact(self):
        pts = uniform_cube(200, 2, seed=28)
        index = repro.build_index(pts, 2, seed=5)
        index.insert(np.random.default_rng(2).random((4, 2)))
        index.commit()
        _assert_equivalent(index.mutable)

    def test_covering_invalidated_by_commit(self):
        pts = uniform_cube(150, 2, seed=29)
        index = repro.build_index(pts, 2, seed=7)
        probe = pts[11]
        cov0 = index.covering(probe)
        index.delete([int(cov0[0])] if cov0.size else [11])
        index.commit()
        cov1 = index.covering(probe)  # rebuilt over the new version
        ref = repro.build_index(index.points, 2, seed=7).covering(probe)
        np.testing.assert_array_equal(np.sort(cov1), np.sort(ref))

    def test_knn_index_alias_deprecated(self):
        with pytest.warns(DeprecationWarning, match="KNNIndex is deprecated"):
            alias = repro.api.KNNIndex
        assert alias is repro.api.Index
