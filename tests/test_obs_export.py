"""Telemetry sink tests: JSONL event log schema and Prometheus exposition.

Covers the Prometheus escaping/format rules, the minimal JSON-Schema
validator, the golden schema file in ``docs/``, and the end-to-end
``run_traced(events_out=..., metrics_out=...)`` wiring.
"""

import json
import os
import re

import numpy as np
import pytest

import repro
from repro.obs import Metrics, Tracer
from repro.obs.export import (
    EVENT_SCHEMA,
    EVENT_TYPES,
    SchemaError,
    events_from_tracer,
    load_trace,
    metrics_to_prometheus,
    validate_event,
    write_events_jsonl,
)
from repro.obs.spans import write_trace
from repro.pvm import Cost, Machine

SCHEMA_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "docs", "telemetry_events.schema.json",
)


def _points(n=300, d=2, seed=0):
    return np.random.default_rng(seed).standard_normal((n, d))


class TestPrometheusExposition:
    def test_counter_gets_total_suffix_and_counter_type(self):
        m = Metrics()
        m.inc("fast.punts_iota", 3)
        text = metrics_to_prometheus(m)
        assert "# TYPE repro_fast_punts_iota_total counter" in text
        assert 'repro_fast_punts_iota_total{key="fast.punts_iota"} 3.0' in text

    def test_gauge_type_and_value(self):
        m = Metrics()
        m.set_gauge("parallel.utilization", 0.75)
        text = metrics_to_prometheus(m)
        assert "# TYPE repro_parallel_utilization gauge" in text
        assert 'repro_parallel_utilization{key="parallel.utilization"} 0.75' in text

    def test_name_sanitization(self):
        m = Metrics()
        m.inc("weird-name.with spaces/and+more", 1)
        text = metrics_to_prometheus(m)
        for line in text.splitlines():
            if line.startswith("#"):
                name = line.split()[2]
            else:
                name = line.split("{")[0]
            assert re.match(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$", name), line

    def test_label_value_escaping(self):
        m = Metrics()
        m.set_gauge('odd"key\\with\nnewline', 1.0)
        text = metrics_to_prometheus(m)
        assert '{key="odd\\"key\\\\with\\nnewline"}' in text
        assert "\n\n" not in text  # raw newline never leaks into a sample line

    def test_series_count_and_numeric_stats(self):
        m = Metrics()
        for v in (1.0, 2.0, 3.0):
            m.observe("fast.base_case_sizes", v)
        m.observe("fast.straddler_fraction", (100, 5))  # structured sample
        text = metrics_to_prometheus(m)
        assert 'repro_fast_base_case_sizes_count{key="fast.base_case_sizes"} 3.0' in text
        assert 'repro_fast_base_case_sizes_sum{key="fast.base_case_sizes"} 6.0' in text
        assert 'repro_fast_base_case_sizes_min{key="fast.base_case_sizes"} 1.0' in text
        assert 'repro_fast_base_case_sizes_max{key="fast.base_case_sizes"} 3.0' in text
        # non-numeric series exports only the count family
        assert "repro_fast_straddler_fraction_count" in text
        assert "repro_fast_straddler_fraction_sum" not in text

    def test_help_lines_and_determinism(self):
        m = Metrics()
        m.inc("b.z", 1)
        m.inc("a.y", 2)
        m.set_gauge("c.x", 3)
        text = metrics_to_prometheus(m)
        assert text == metrics_to_prometheus(m)
        # sorted by registry key within each section
        assert text.index("repro_a_y_total") < text.index("repro_b_z_total")
        for line in text.splitlines():
            assert line.startswith("#") or re.match(r"^[a-zA-Z_:]", line)

    def test_metrics_to_prometheus_method_delegates(self):
        m = Metrics()
        m.inc("x", 1)
        assert m.to_prometheus() == metrics_to_prometheus(m)


class TestValidator:
    def test_accepts_valid_event(self):
        validate_event({"event": "span_open", "ts": 0.0, "seq": 0,
                        "name": "run", "level": 0, "attrs": {}})

    def test_rejects_unknown_event_type(self):
        with pytest.raises(SchemaError, match="enum"):
            validate_event({"event": "nope", "ts": 0.0, "seq": 0})

    def test_rejects_missing_required(self):
        with pytest.raises(SchemaError, match="required"):
            validate_event({"event": "punt", "ts": 0.0})

    def test_rejects_additional_properties(self):
        with pytest.raises(SchemaError, match="unexpected"):
            validate_event({"event": "punt", "ts": 0.0, "seq": 0, "bogus": 1})

    def test_rejects_wrong_types(self):
        with pytest.raises(SchemaError, match="expected type"):
            validate_event({"event": "punt", "ts": "zero", "seq": 0})
        with pytest.raises(SchemaError, match="expected type"):
            validate_event({"event": "punt", "ts": 0.0, "seq": 0.5})
        # booleans are not integers/numbers in JSON Schema
        with pytest.raises(SchemaError, match="expected type"):
            validate_event({"event": "punt", "ts": True, "seq": 0})

    def test_items_subschema(self):
        schema = {"type": "array", "items": {"type": "integer"}}
        validate_event([1, 2, 3], schema)
        with pytest.raises(SchemaError):
            validate_event([1, "x"], schema)


class TestEventLog:
    def _tracer(self):
        machine = Machine()
        tracer = machine.enable_tracing()
        with machine.span("run", n=10):
            with machine.span("frontier.level", phase="build", level=0):
                machine.charge(Cost(1.0, 10.0))
            with machine.span("frontier.shard", worker=0, phase="build"):
                pass
            with machine.span("frontier.level", phase="correct", level=0,
                              punts=2):
                machine.charge(Cost(1.0, 5.0))
        return tracer

    def test_schema_file_matches_source(self):
        """docs/telemetry_events.schema.json is the committed copy of
        EVENT_SCHEMA; the two must never drift."""
        with open(SCHEMA_PATH) as fh:
            assert json.load(fh) == EVENT_SCHEMA

    def test_every_line_validates_against_golden_schema(self, tmp_path):
        with open(SCHEMA_PATH) as fh:
            golden = json.load(fh)
        path = tmp_path / "events.jsonl"
        count = write_events_jsonl(str(path), self._tracer())
        lines = path.read_text().splitlines()
        assert len(lines) == count > 0
        for line in lines:
            validate_event(json.loads(line), golden)

    def test_event_stream_shape(self):
        events = events_from_tracer(self._tracer())
        assert events[0]["event"] == "run_meta"
        assert events[0]["seq"] == 0
        assert [e["seq"] for e in events] == list(range(len(events)))
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        kinds = {e["event"] for e in events}
        assert {"run_meta", "span_open", "span_close",
                "shard_dispatch", "shard_complete", "punt"} <= kinds
        assert set(kinds) <= set(EVENT_TYPES)
        punt = [e for e in events if e["event"] == "punt"]
        assert punt and punt[0]["punts"] == 2
        opens = sum(1 for e in events if e["event"] == "span_open")
        closes = sum(1 for e in events if e["event"] == "span_close")
        assert opens == closes == self._tracer().span_count()

    def test_deterministic(self):
        a = events_from_tracer(self._tracer())
        b = events_from_tracer(self._tracer())
        # same structure modulo wall-clock: strip timestamps
        def strip(evs):
            return [
                {k: v for k, v in e.items() if k not in ("ts", "wall_seconds")}
                for e in evs
            ]

        assert strip(a) == strip(b)


class TestRunTracedSinks:
    def test_run_traced_writes_both_sinks(self, tmp_path):
        ev = tmp_path / "e.jsonl"
        prom = tmp_path / "m.prom"
        _, tracer = repro.run_traced(
            _points(), 2, seed=3, engine="frontier",
            events_out=str(ev), metrics_out=str(prom),
        )
        lines = ev.read_text().splitlines()
        assert lines and all(
            json.loads(l)["event"] in EVENT_TYPES for l in lines
        )
        text = prom.read_text()
        assert "# TYPE repro_fast_nodes_total counter" in text

    def test_config_fields_used_as_fallback(self, tmp_path):
        from repro.core import FastDnCConfig

        ev = tmp_path / "e.jsonl"
        cfg = FastDnCConfig(events_out=str(ev))
        repro.run_traced(_points(), 1, seed=3, config=cfg)
        assert ev.exists() and ev.read_text().strip()

    def test_no_sinks_by_default(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        repro.run_traced(_points(), 1, seed=3)
        assert list(tmp_path.iterdir()) == []


class TestLoadTrace:
    def test_round_trip(self, tmp_path):
        result, tracer = repro.run_traced(_points(), 2, seed=3)
        path = tmp_path / "t.json"
        write_trace(str(path), tracer, total=result.cost,
                    metrics=result.machine.metrics.to_dict())
        loaded, payload = load_trace(str(path))
        assert loaded.span_count() == tracer.span_count()
        assert loaded.per_level_breakdown() == tracer.per_level_breakdown()
        assert payload["otherData"]["total"]["work"] == result.cost.work

    def test_rejects_non_trace_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("{}")
        with pytest.raises(ValueError, match="spanTree"):
            load_trace(str(path))
