"""KNeighborhoodSystem result type and the neighbor-list merge kernel."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines import brute_force_knn
from repro.core.neighborhood import (
    KNeighborhoodSystem,
    merge_neighbor_lists,
    merge_neighbor_lists_many,
)
from repro.workloads import uniform_cube


def tiny_system() -> KNeighborhoodSystem:
    pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 2.0]])
    idx = np.array([[1], [0], [0]])
    sq = np.array([[1.0], [1.0], [4.0]])
    return KNeighborhoodSystem(pts, 1, idx, sq)


class TestConstruction:
    def test_basic(self):
        s = tiny_system()
        assert len(s) == 3 and s.dim == 2 and s.k == 1

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            KNeighborhoodSystem(np.zeros((3, 2)), 2, np.zeros((3, 1), dtype=int), np.zeros((3, 2)))

    def test_k_zero_rejected(self):
        with pytest.raises(ValueError):
            KNeighborhoodSystem(np.zeros((2, 2)), 0, np.zeros((2, 0), dtype=int), np.zeros((2, 0)))

    def test_radii(self):
        np.testing.assert_allclose(tiny_system().radii, [1.0, 1.0, 2.0])

    def test_radii_inf_on_padding(self):
        s = KNeighborhoodSystem(
            np.zeros((1, 2)), 1, np.array([[-1]]), np.array([[np.inf]])
        )
        assert np.isinf(s.radii[0])
        assert not s.is_complete()

    def test_to_ball_system(self):
        b = tiny_system().to_ball_system()
        assert len(b) == 3
        np.testing.assert_allclose(b.radii, [1, 1, 2])

    def test_validate_sorted(self):
        pts = uniform_cube(50, 2, 0)
        assert brute_force_knn(pts, 3).validate_sorted()


class TestSameDistances:
    def test_reflexive(self):
        s = tiny_system()
        assert s.same_distances(s)

    def test_detects_difference(self):
        s = tiny_system()
        other = KNeighborhoodSystem(
            s.points, 1, s.neighbor_indices, s.neighbor_sq_dists * 2
        )
        assert not s.same_distances(other)

    def test_k_mismatch(self):
        pts = uniform_cube(20, 2, 1)
        assert not brute_force_knn(pts, 1).same_distances(brute_force_knn(pts, 2))

    def test_infinite_slots_compare_equal(self):
        pts = np.zeros((2, 2))
        pts[1] = [1, 0]
        a = KNeighborhoodSystem(pts, 3, np.array([[1, -1, -1], [0, -1, -1]]),
                                np.array([[1.0, np.inf, np.inf], [1.0, np.inf, np.inf]]))
        b = KNeighborhoodSystem(pts, 3, np.array([[1, -1, -1], [0, -1, -1]]),
                                np.array([[1.0, np.inf, np.inf], [1.0, np.inf, np.inf]]))
        assert a.same_distances(b)


class TestMergeNeighborLists:
    def test_basic_merge(self):
        idx, sq = merge_neighbor_lists(
            np.array([3, 5]), np.array([1.0, 4.0]), np.array([7]), np.array([2.0]), 2
        )
        np.testing.assert_array_equal(idx, [3, 7])
        np.testing.assert_array_equal(sq, [1.0, 2.0])

    def test_duplicate_id_keeps_smaller_distance(self):
        idx, sq = merge_neighbor_lists(
            np.array([3]), np.array([5.0]), np.array([3]), np.array([2.0]), 2
        )
        np.testing.assert_array_equal(idx, [3, -1])
        np.testing.assert_array_equal(sq, [2.0, np.inf])

    def test_padding_ignored(self):
        idx, sq = merge_neighbor_lists(
            np.array([-1, -1]), np.array([np.inf, np.inf]), np.array([4]), np.array([1.0]), 2
        )
        np.testing.assert_array_equal(idx, [4, -1])

    def test_tie_broken_by_id(self):
        idx, _ = merge_neighbor_lists(
            np.array([9]), np.array([1.0]), np.array([2]), np.array([1.0]), 2
        )
        np.testing.assert_array_equal(idx, [2, 9])

    def test_empty_inputs(self):
        idx, sq = merge_neighbor_lists(np.array([]), np.array([]), np.array([]), np.array([]), 3)
        np.testing.assert_array_equal(idx, [-1, -1, -1])
        assert np.isinf(sq).all()

    @given(
        st.lists(st.tuples(st.integers(0, 30), st.floats(0, 100, allow_nan=False)), max_size=15),
        st.lists(st.tuples(st.integers(0, 30), st.floats(0, 100, allow_nan=False)), max_size=15),
        st.integers(1, 8),
    )
    def test_matches_reference_implementation(self, a, b, k):
        ia = np.array([t[0] for t in a], dtype=np.int64)
        sa = np.array([t[1] for t in a])
        ib = np.array([t[0] for t in b], dtype=np.int64)
        sb = np.array([t[1] for t in b])
        idx, sq = merge_neighbor_lists(ia, sa, ib, sb, k)
        # reference: best distance per id, sorted by (distance, id), top k
        best: dict[int, float] = {}
        for i, s in list(zip(ia, sa)) + list(zip(ib, sb)):
            best[int(i)] = min(best.get(int(i), np.inf), float(s))
        ranked = sorted(best.items(), key=lambda t: (t[1], t[0]))[:k]
        exp_idx = [i for i, _ in ranked] + [-1] * (k - len(ranked))
        exp_sq = [s for _, s in ranked] + [np.inf] * (k - len(ranked))
        np.testing.assert_array_equal(idx, exp_idx)
        np.testing.assert_allclose(sq, exp_sq)

    def test_output_sorted_and_padded(self):
        idx, sq = merge_neighbor_lists(
            np.array([5, 1]), np.array([9.0, 3.0]), np.array([8]), np.array([6.0]), 5
        )
        np.testing.assert_array_equal(idx, [1, 8, 5, -1, -1])
        assert (np.diff(sq[:3]) >= 0).all()


class TestMergeNeighborListsMany:
    """The flat-stream batch merge vs per-row scalar merges."""

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(-1, 30),
                      st.floats(0, 100, allow_nan=False)),
            max_size=40,
        ),
        st.integers(1, 6),
    )
    def test_matches_scalar_merge_per_row(self, stream, k):
        rows = np.array([t[0] for t in stream], dtype=np.int64)
        ids = np.array([t[1] for t in stream], dtype=np.int64)
        sq = np.array([t[2] for t in stream])
        got_idx, got_sq = merge_neighbor_lists_many(rows, ids, sq, 6, k)
        empty_i, empty_f = np.empty(0, dtype=np.int64), np.empty(0)
        for r in range(6):
            m = rows == r
            exp_idx, exp_sq = merge_neighbor_lists(ids[m], sq[m], empty_i, empty_f, k)
            np.testing.assert_array_equal(got_idx[r], exp_idx)
            np.testing.assert_array_equal(got_sq[r], exp_sq)

    def test_empty_stream_is_all_padding(self):
        idx, sq = merge_neighbor_lists_many(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            np.empty(0), 3, 2
        )
        np.testing.assert_array_equal(idx, np.full((3, 2), -1))
        assert np.isinf(sq).all()
