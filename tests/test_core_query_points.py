"""knn_query: new-point queries against the partition tree."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.spatial import cKDTree

from repro.core import knn_query, parallel_nearest_neighborhood
from repro.workloads import clustered, uniform_cube, with_duplicates


@pytest.fixture(scope="module")
def index2d():
    pts = uniform_cube(900, 2, 41)
    res = parallel_nearest_neighborhood(pts, 1, seed=42)
    return res.tree, pts


class TestExactness:
    def test_matches_scipy(self, index2d):
        tree, pts = index2d
        queries = np.random.default_rng(1).random((120, 2))
        for k in (1, 3, 7):
            idx, sq = knn_query(tree, pts, queries, k)
            d_ref, i_ref = cKDTree(pts).query(queries, k=k)
            d_ref = np.atleast_2d(d_ref.T).T if k == 1 else d_ref
            np.testing.assert_allclose(np.sqrt(sq), d_ref.reshape(sq.shape), rtol=1e-9)

    def test_query_outside_bounding_box(self, index2d):
        tree, pts = index2d
        queries = np.array([[5.0, 5.0], [-3.0, 0.5]])
        idx, sq = knn_query(tree, pts, queries, 2)
        d_ref, i_ref = cKDTree(pts).query(queries, k=2)
        np.testing.assert_allclose(np.sqrt(sq), d_ref, rtol=1e-9)

    def test_query_at_data_point_finds_itself(self, index2d):
        tree, pts = index2d
        idx, sq = knn_query(tree, pts, pts[:5], 1)
        np.testing.assert_array_equal(idx[:, 0], np.arange(5))
        np.testing.assert_allclose(sq[:, 0], 0.0, atol=1e-15)

    def test_3d_clustered(self):
        pts = clustered(600, 3, 43)
        res = parallel_nearest_neighborhood(pts, 1, seed=44)
        queries = np.random.default_rng(2).random((50, 3))
        idx, sq = knn_query(res.tree, pts, queries, 4)
        d_ref, _ = cKDTree(pts).query(queries, k=4)
        np.testing.assert_allclose(np.sqrt(sq), d_ref, rtol=1e-9)

    def test_duplicated_data(self):
        pts = with_duplicates(uniform_cube(300, 2, 45), 0.4, 46)
        res = parallel_nearest_neighborhood(pts, 1, seed=47)
        queries = np.random.default_rng(3).random((30, 2))
        idx, sq = knn_query(res.tree, pts, queries, 3)
        d_ref, _ = cKDTree(pts).query(queries, k=3)
        np.testing.assert_allclose(np.sqrt(sq), d_ref, rtol=1e-9)


class TestEdgeCases:
    def test_k_exceeds_n_rejected(self, index2d):
        tree, pts = index2d
        with pytest.raises(ValueError):
            knn_query(tree, pts, pts[:1], pts.shape[0] + 1)

    def test_k_equals_n(self):
        pts = uniform_cube(10, 2, 48)
        res = parallel_nearest_neighborhood(pts, 1, seed=49)
        idx, sq = knn_query(res.tree, pts, np.array([[0.5, 0.5]]), 10)
        assert (idx[0] >= 0).all()
        assert np.isfinite(sq).all()

    def test_empty_queries(self, index2d):
        tree, pts = index2d
        idx, sq = knn_query(tree, pts, np.zeros((0, 2)), 2)
        assert idx.shape == (0, 2)

    def test_dimension_mismatch_rejected(self, index2d):
        tree, pts = index2d
        with pytest.raises(ValueError):
            knn_query(tree, pts, np.zeros((2, 3)), 1)

    def test_sorted_rows(self, index2d):
        tree, pts = index2d
        _, sq = knn_query(tree, pts, np.random.default_rng(4).random((20, 2)), 5)
        assert (np.diff(sq, axis=1) >= 0).all()
