"""Scan-vector sorting, permutation and selection (the paper's §1 remark)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.pvm import Machine
from repro.pvm.sorting import (
    argsort_radix,
    floyd_rivest_select,
    parallel_k_smallest,
    random_permutation,
    randomized_select,
    split_radix_sort,
)

int_keys = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(0, 300),
    elements=st.integers(0, 10_000),
)
float_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(1, 300),
    elements=st.floats(-1e6, 1e6, allow_nan=False),
)


class TestRadixSort:
    @given(int_keys)
    def test_sorts_correctly(self, keys):
        sorted_keys, order = split_radix_sort(Machine(), keys)
        np.testing.assert_array_equal(sorted_keys, np.sort(keys))
        np.testing.assert_array_equal(keys[order], sorted_keys)

    def test_stability(self):
        keys = np.array([2, 1, 2, 1, 2])
        _, order = split_radix_sort(Machine(), keys)
        # equal keys keep input order
        np.testing.assert_array_equal(order, [1, 3, 0, 2, 4])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            split_radix_sort(Machine(), np.array([-1, 2]))

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            split_radix_sort(Machine(), np.array([1.5]))

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            split_radix_sort(Machine(), np.zeros((2, 2), dtype=int))

    def test_cost_linear_per_bit(self):
        m = Machine()
        split_radix_sort(m, np.arange(256)[::-1].copy(), bits=8)
        # 8 passes x (1 ewise + 2 scans + 1 permute) over 256 elements
        assert m.total.depth == 8 * 4
        assert m.total.work == 8 * 4 * 256

    def test_argsort_radix(self):
        keys = np.array([5, 1, 4])
        np.testing.assert_array_equal(argsort_radix(Machine(), keys), [1, 2, 0])


class TestRandomPermutation:
    def test_is_permutation(self):
        perm = random_permutation(Machine(), np.random.default_rng(0), 500)
        np.testing.assert_array_equal(np.sort(perm), np.arange(500))

    def test_empty(self):
        assert random_permutation(Machine(), np.random.default_rng(0), 0).size == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            random_permutation(Machine(), np.random.default_rng(0), -1)

    def test_roughly_uniform_first_element(self):
        rng = np.random.default_rng(1)
        firsts = [random_permutation(Machine(), rng, 8)[0] for _ in range(400)]
        counts = np.bincount(firsts, minlength=8)
        assert counts.min() > 20  # every value appears often

    def test_depth_logarithmic(self):
        m = Machine()
        random_permutation(m, np.random.default_rng(2), 1024)
        # 2*log2(1024) = 20 bits -> 20 passes of constant depth
        assert m.total.depth <= 20 * 4 + 1


class TestSelection:
    @given(float_arrays, st.data())
    @settings(max_examples=60)
    def test_randomized_select_matches_sort(self, arr, data):
        k = data.draw(st.integers(1, arr.shape[0]))
        got = randomized_select(Machine(), arr, k)
        assert got == np.sort(arr)[k - 1]

    @given(float_arrays, st.data())
    @settings(max_examples=60)
    def test_floyd_rivest_matches_sort(self, arr, data):
        k = data.draw(st.integers(1, arr.shape[0]))
        got = floyd_rivest_select(Machine(), arr, k)
        assert got == np.sort(arr)[k - 1]

    def test_select_bounds_checked(self):
        for fn in (randomized_select, floyd_rivest_select):
            with pytest.raises(ValueError):
                fn(Machine(), np.arange(5, dtype=float), 0)
            with pytest.raises(ValueError):
                fn(Machine(), np.arange(5, dtype=float), 6)

    def test_floyd_rivest_duplicates(self):
        arr = np.array([3.0] * 100 + [1.0] * 100 + [2.0] * 100)
        assert floyd_rivest_select(Machine(), arr, 150) == 2.0

    def test_floyd_rivest_depth_sublinear(self):
        """The expected-O(1)-pass property: depth grows far slower than n."""
        depths = {}
        for n in (1_000, 100_000):
            m = Machine()
            rng = np.random.default_rng(3)
            floyd_rivest_select(m, rng.random(n), n // 2)
            depths[n] = m.total.depth
        assert depths[100_000] <= depths[1_000] * 3

    def test_randomized_select_median_large(self):
        rng = np.random.default_rng(4)
        arr = rng.random(10_001)
        assert randomized_select(Machine(), arr, 5001) == np.median(arr)


class TestParallelKSmallest:
    @given(float_arrays, st.data())
    @settings(max_examples=60)
    def test_matches_sorted_prefix(self, arr, data):
        k = data.draw(st.integers(1, arr.shape[0]))
        got = parallel_k_smallest(Machine(), arr, k)
        np.testing.assert_array_equal(got, np.sort(arr)[:k])

    def test_bounds(self):
        with pytest.raises(ValueError):
            parallel_k_smallest(Machine(), np.arange(3, dtype=float), 4)

    def test_threshold_duplicates(self):
        arr = np.array([1.0, 2.0, 2.0, 2.0, 3.0])
        np.testing.assert_array_equal(
            parallel_k_smallest(Machine(), arr, 2), [1.0, 2.0]
        )

    def test_depth_nearly_flat_in_n(self):
        """§6.2's point: k smallest of n costs ~O(1) passes, not O(log n)."""
        depths = {}
        for n in (1_000, 64_000):
            m = Machine()
            parallel_k_smallest(m, np.random.default_rng(5).random(n), 8)
            depths[n] = m.total.depth
        assert depths[64_000] <= depths[1_000] * 3
