"""Request-time observability primitives (ISSUE 9).

Unit coverage for the pieces under ``repro.obs``: the log-linear bucket
:class:`~repro.obs.metrics.Histogram` and its Prometheus exposition
(zero-observation families, ``le`` ordering, label escaping, per-worker
merge after a pool run), the :class:`~repro.obs.rt.FlightRecorder`
retention policy, and :class:`~repro.obs.rt.SLOTracker` attainment /
burn-rate / window-expiry semantics under a fake clock.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import (
    DEFAULT_LATENCY_BOUNDS_MS,
    FlightRecorder,
    Histogram,
    Metrics,
    RequestTimeline,
    SLOTracker,
    log_linear_bounds,
)
from repro.obs.export import metrics_to_prometheus


class FakeClock:
    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestLogLinearBounds:
    def test_default_scheme(self):
        assert len(DEFAULT_LATENCY_BOUNDS_MS) == 63  # 7 decades x 9 steps
        assert DEFAULT_LATENCY_BOUNDS_MS[0] == pytest.approx(0.01)
        assert DEFAULT_LATENCY_BOUNDS_MS[-1] == pytest.approx(90000.0)

    def test_strictly_increasing_and_deterministic(self):
        a = log_linear_bounds(-1, 2, 4)
        b = log_linear_bounds(-1, 2, 4)
        assert a == b
        assert all(x < y for x, y in zip(a, a[1:]))

    def test_validation(self):
        with pytest.raises(ValueError, match="decade_hi"):
            log_linear_bounds(2, 2)
        with pytest.raises(ValueError, match="steps_per_decade"):
            log_linear_bounds(0, 1, 10)


class TestHistogram:
    def test_le_bucket_semantics(self):
        h = Histogram(bounds=[1.0, 2.0, 4.0])
        for v in (0.5, 1.0, 1.5, 2.0, 3.0, 100.0):
            h.observe(v)
        # v <= bound lands in that bucket (Prometheus le); 100 overflows
        assert h.bucket_counts == [2, 2, 1, 1]
        assert h.count == 6
        assert h.min == 0.5 and h.max == 100.0
        assert h.cumulative_counts() == [2, 4, 5, 6]

    def test_nan_ignored(self):
        h = Histogram(bounds=[1.0])
        h.observe(float("nan"))
        assert h.count == 0 and h.sum == 0.0

    def test_quantiles_track_exact_percentiles(self):
        rng = np.random.default_rng(7)
        data = rng.uniform(0.1, 50.0, size=5000)
        h = Histogram()
        for v in data:
            h.observe(float(v))
        for p in (50, 95, 99):
            exact = float(np.percentile(data, p))
            est = h.percentile(p)
            # log-linear buckets bound relative error at ~11% per bucket
            assert abs(est - exact) / exact < 0.15, (p, est, exact)
        assert h.quantile(1.0) == pytest.approx(h.max)

    def test_quantile_empty_and_overflow(self):
        h = Histogram(bounds=[1.0])
        assert h.quantile(0.5) is None
        h.observe(10.0)  # overflow bucket only
        assert h.quantile(0.5) == 10.0  # exact max, not +Inf
        with pytest.raises(ValueError, match="q must be"):
            h.quantile(1.5)

    def test_merge_and_bounds_mismatch(self):
        a = Histogram(bounds=[1.0, 2.0])
        b = Histogram(bounds=[1.0, 2.0])
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        a.merge(b)
        assert a.count == 3 and a.bucket_counts == [1, 1, 1]
        assert a.min == 0.5 and a.max == 9.0
        with pytest.raises(ValueError, match="different bounds"):
            a.merge(Histogram(bounds=[1.0, 3.0]))

    def test_dict_roundtrip(self):
        h = Histogram(bounds=[1.0, 2.0])
        for v in (0.3, 1.7, 5.0):
            h.observe(v)
        back = Histogram.from_dict(h.to_dict())
        assert back.bounds == h.bounds
        assert back.bucket_counts == h.bucket_counts
        assert back.count == h.count and back.sum == pytest.approx(h.sum)
        assert back.min == h.min and back.max == h.max

    def test_invalid_bounds(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram(bounds=[1.0, 1.0])
        with pytest.raises(ValueError, match="at least one"):
            Histogram(bounds=[])

    def test_registry_get_or_create_and_merge(self):
        m = Metrics()
        h1 = m.histogram("x.lat_ms", bounds=[1.0, 2.0])
        h1.observe(1.5)
        assert m.histogram("x.lat_ms") is h1  # get-or-create
        other = Metrics()
        other.histogram("x.lat_ms", bounds=[1.0, 2.0]).observe(0.5)
        m.merge(other)
        assert m.histogram("x.lat_ms").count == 2


class TestPrometheusExposition:
    def test_zero_observation_histogram_still_exports(self):
        m = Metrics()
        m.histogram("net.request_ms", bounds=[1.0, 2.0])
        text = metrics_to_prometheus(m)
        assert "# TYPE repro_net_request_ms histogram" in text
        assert 'repro_net_request_ms_bucket{key="net.request_ms",le="1"} 0.0' in text
        assert 'repro_net_request_ms_bucket{key="net.request_ms",le="+Inf"} 0.0' in text
        assert 'repro_net_request_ms_sum{key="net.request_ms"} 0.0' in text
        assert 'repro_net_request_ms_count{key="net.request_ms"} 0.0' in text

    def test_le_labels_ascending_cumulative_ending_inf(self):
        m = Metrics()
        h = m.histogram("s.lat", bounds=[0.5, 1.0, 2.5])
        for v in (0.2, 0.7, 0.7, 2.0, 99.0):
            h.observe(v)
        lines = [
            line for line in metrics_to_prometheus(m).splitlines()
            if line.startswith("repro_s_lat_bucket")
        ]
        les = [line.split('le="')[1].split('"')[0] for line in lines]
        assert les == ["0.5", "1", "2.5", "+Inf"]
        counts = [float(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == [1.0, 3.0, 4.0, 5.0]  # cumulative, +Inf == count
        assert counts == sorted(counts)

    def test_label_escaping_of_hostile_tenant_names(self):
        m = Metrics()
        key = 'tenant.he said "hi"\nserve.batch_ms'
        m.histogram(key, bounds=[1.0]).observe(0.5)
        text = metrics_to_prometheus(m)
        # raw quote and newline must be escaped in the key label
        assert 'key="tenant.he said \\"hi\\"\\nserve.batch_ms"' in text
        assert '\nserve.batch_ms"' not in text.replace(
            '\\nserve.batch_ms"', "")

    def test_per_worker_histograms_merge_after_pool_run(self):
        import repro
        from repro.pvm import Machine
        from repro.serve import ServingIndex, ServingPool

        pts = repro.workloads.uniform_cube(600, 2, seed=3)
        index = ServingIndex.build(pts, k=2, seed=9)
        queries = repro.workloads.uniform_cube(256, 2, seed=4)
        machine = Machine()
        with ServingPool(index, 2, machine=machine, min_shard=16) as pool:
            pool.execute("knn", queries)
            merged = pool.collect_worker_stats()
            assert merged is not None and merged.count >= 2  # one per shard
            # collection resets worker-side state: a second collect with no
            # new batches adds nothing
            again = pool.collect_worker_stats()
            assert again is not None and again.count == 0
        folded = machine.metrics.histograms["serve.pool_shard_ms"]
        assert folded.count == merged.count
        text = metrics_to_prometheus(machine.metrics)
        assert "# TYPE repro_serve_pool_shard_ms histogram" in text
        assert (f'repro_serve_pool_shard_ms_count'
                f'{{key="serve.pool_shard_ms"}} {float(merged.count)!r}') in text


class TestFlightRecorder:
    def _tl(self, i, total_ms):
        return RequestTimeline(request_id=f"r{i}", total_ms=total_ms)

    def test_ring_eviction_and_recent_order(self):
        rec = FlightRecorder(capacity=3, slow_k=0)
        for i in range(5):
            rec.record(self._tl(i, float(i)))
        assert len(rec) == 3 and rec.recorded == 5
        assert [t.request_id for t in rec.recent()] == ["r4", "r3", "r2"]
        assert [t.request_id for t in rec.recent(limit=1)] == ["r4"]
        assert rec.slowest() == []

    def test_slowest_k_survives_ring_eviction(self):
        rec = FlightRecorder(capacity=2, slow_k=3)
        # the slowest request arrives first and is evicted from the ring
        for i, ms in enumerate([90.0, 1.0, 2.0, 3.0, 4.0]):
            rec.record(self._tl(i, ms))
        assert [t.total_ms for t in rec.slowest()] == [90.0, 4.0, 3.0]
        assert [t.total_ms for t in rec.slowest(limit=2)] == [90.0, 4.0]

    def test_snapshot_shape(self):
        rec = FlightRecorder(capacity=4, slow_k=2)
        rec.record(self._tl(0, 5.0))
        snap = rec.snapshot()
        assert snap["recorded"] == 1 and snap["capacity"] == 4
        assert snap["recent"][0]["request_id"] == "r0"
        assert snap["slowest"][0]["total_ms"] == 5.0

    def test_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError, match="slow_k"):
            FlightRecorder(slow_k=-1)


class TestRequestTimeline:
    def test_ok_and_to_dict(self):
        tl = RequestTimeline(request_id="a", status=200)
        assert tl.ok
        assert not RequestTimeline(request_id="b", status=429).ok
        assert not RequestTimeline(request_id="c").ok  # status 0 = never sent
        d = tl.to_dict()
        assert d["request_id"] == "a" and d["status"] == 200
        assert "queued_ms" in d and "batch_id" in d and "cache_hit" in d


class TestSLOTracker:
    def test_attainment_and_burn_rate_exact(self):
        clock = FakeClock()
        slo = SLOTracker(10.0, objective=0.9, clock=clock)
        for _ in range(8):
            slo.record(5.0, ok=True)
        slo.record(50.0, ok=True)   # slow but successful
        slo.record(5.0, ok=False)   # fast but failed: never counts as fast
        assert slo.attainment(300) == pytest.approx(0.8)
        assert slo.burn_rate(300) == pytest.approx((1 - 0.8) / (1 - 0.9))
        assert slo.error_rate(300) == pytest.approx(0.1)
        assert slo.error_burn_rate(300) == pytest.approx(0.1 / (1 - 0.999))

    def test_empty_window_is_none(self):
        slo = SLOTracker(10.0, clock=FakeClock())
        assert slo.attainment() is None
        assert slo.burn_rate() is None
        assert slo.error_rate() is None
        assert slo.p95_ms() is None

    def test_short_window_expires_long_window_remembers(self):
        clock = FakeClock()
        slo = SLOTracker(10.0, windows_s=(300.0, 3600.0), clock=clock)
        slo.record(50.0, ok=True)  # a miss
        assert slo.burn_rate(300.0) > 1.0
        clock.advance(600.0)  # past the 5m window, within the 1h window
        assert slo.attainment(300.0) is None
        assert slo.attainment(3600.0) == pytest.approx(0.0)
        clock.advance(4000.0)  # past the 1h window: bins expire entirely
        slo.record(1.0, ok=True)
        assert slo.attainment(3600.0) == pytest.approx(1.0)
        assert slo.total == 2  # lifetime totals never expire

    def test_p95_cached_per_bin_advance(self):
        clock = FakeClock()
        slo = SLOTracker(10.0, bin_s=5.0, clock=clock)
        slo.record(20.0)
        first = slo.p95_ms()
        slo.record(500.0)  # same bin: cache hides it until the bin turns
        assert slo.p95_ms() == first
        clock.advance(5.0)
        assert slo.p95_ms() > first

    def test_export_publishes_gauges(self):
        clock = FakeClock()
        metrics = Metrics()
        slo = SLOTracker(10.0, metrics=metrics, prefix="net.slo.blue",
                         clock=clock)
        out = slo.export()  # empty windows export only the static pair
        assert set(out) == {"net.slo.blue.target_ms", "net.slo.blue.objective"}
        slo.record(5.0, ok=True)
        out = slo.export()
        assert out["net.slo.blue.attainment_5m"] == 1.0
        assert out["net.slo.blue.burn_rate_1h"] == 0.0
        assert metrics.gauges["net.slo.blue.attainment_5m"] == 1.0

    def test_summary_shape(self):
        clock = FakeClock()
        slo = SLOTracker(25.0, clock=clock)
        slo.record(5.0, ok=True)
        slo.record(100.0, ok=False)
        s = slo.summary()
        assert s["target_ms"] == 25.0 and s["total"] == 2 and s["errors"] == 1
        assert set(s["windows"]) == {"5m", "1h"}
        assert s["windows"]["5m"]["attainment"] == pytest.approx(0.5)
        assert s["p95_ms"] == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="target_ms"):
            SLOTracker(0.0)
        with pytest.raises(ValueError, match="objective"):
            SLOTracker(10.0, objective=1.0)
        with pytest.raises(ValueError, match="error_objective"):
            SLOTracker(10.0, error_objective=0.0)
        with pytest.raises(ValueError, match="bin_s"):
            SLOTracker(10.0, bin_s=0.0)
        with pytest.raises(ValueError, match="window"):
            SLOTracker(10.0, windows_s=())
        with pytest.raises(ValueError, match="smallest window"):
            SLOTracker(10.0, windows_s=(1.0,), bin_s=5.0)

    def test_window_tag(self):
        assert SLOTracker._window_tag(300.0) == "5m"
        assert SLOTracker._window_tag(3600.0) == "1h"
        assert SLOTracker._window_tag(45.0) == "45s"
