"""Ball systems: ply, k-neighborhood property, intersection numbers,
and the Density Lemma (Lemma 2.1) on real k-NN systems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import brute_force_knn
from repro.geometry.balls import BallSystem, union
from repro.geometry.kissing import kissing_number
from repro.geometry.spheres import Sphere
from repro.workloads import uniform_cube


def simple_system() -> BallSystem:
    centers = np.array([[0.0, 0.0], [1.0, 0.0], [5.0, 5.0]])
    radii = np.array([1.5, 1.5, 0.5])
    return BallSystem(centers, radii)


class TestConstruction:
    def test_len_and_dim(self):
        b = simple_system()
        assert len(b) == 3 and b.dim == 2

    def test_radii_shape_mismatch(self):
        with pytest.raises(ValueError):
            BallSystem(np.zeros((3, 2)), np.zeros(2))

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            BallSystem(np.zeros((1, 2)), np.array([-1.0]))

    def test_nan_radius_rejected(self):
        with pytest.raises(ValueError):
            BallSystem(np.zeros((1, 2)), np.array([np.nan]))

    def test_inf_radius_allowed(self):
        b = BallSystem(np.zeros((1, 2)), np.array([np.inf]))
        assert np.isinf(b.radii[0])


class TestCoverage:
    def test_covering_open(self):
        b = simple_system()
        np.testing.assert_array_equal(b.covering(np.array([0.5, 0.0])), [0, 1])

    def test_covering_boundary_excluded_open(self):
        b = BallSystem(np.array([[0.0, 0.0]]), np.array([1.0]))
        assert b.covering(np.array([1.0, 0.0])).size == 0
        assert b.covering(np.array([1.0, 0.0]), closed=True).size == 1

    def test_inf_ball_covers_everything(self):
        b = BallSystem(np.array([[0.0, 0.0]]), np.array([np.inf]))
        assert b.covering(np.array([1e6, 1e6])).size == 1

    def test_ply_of(self):
        b = simple_system()
        ply = b.ply_of(np.array([[0.5, 0.0], [5.0, 5.0], [100.0, 100.0]]))
        np.testing.assert_array_equal(ply, [2, 1, 0])

    def test_max_ply_at_centers(self):
        b = simple_system()
        assert b.max_ply_at_centers() == 2  # each of the pair covers both centers

    def test_empty_system_ply(self):
        b = BallSystem(np.zeros((0, 2)), np.zeros(0))
        assert b.max_ply_at_centers() == 0


class TestKNeighborhoodProperty:
    def test_knn_system_is_k_neighborhood(self):
        pts = uniform_cube(120, 2, 5)
        for k in (1, 2, 4):
            sys_k = brute_force_knn(pts, k).to_ball_system()
            assert sys_k.is_k_neighborhood_system(k)

    def test_larger_radii_violate(self):
        pts = uniform_cube(60, 2, 6)
        base = brute_force_knn(pts, 1).to_ball_system()
        inflated = BallSystem(base.centers, base.radii * 10)
        assert not inflated.is_k_neighborhood_system(1)

    def test_density_lemma(self):
        """Lemma 2.1: a k-neighborhood system is tau_d * k ply."""
        for d in (2, 3):
            pts = uniform_cube(200, d, 7 + d)
            for k in (1, 3):
                system = brute_force_knn(pts, k).to_ball_system()
                bound = kissing_number(d) * k
                # probe ply at centers and at random points
                assert system.max_ply_at_centers() <= bound
                probes = np.random.default_rng(1).random((500, d))
                assert system.ply_of(probes).max() <= bound

    def test_empty_is_k_neighborhood(self):
        assert BallSystem(np.zeros((0, 2)), np.zeros(0)).is_k_neighborhood_system(1)


class TestSeparatorInteraction:
    def test_intersection_number(self):
        b = simple_system()
        s = Sphere(np.array([0.0, 0.0]), 2.0)
        # ball 0 inside (|0|+1.5 < 2 ? 1.5 < 2 yes strictly inside),
        # ball 1 crosses (1+1.5 > 2), ball 2 outside
        assert b.intersection_number(s) == 1
        cls = b.classify(s)
        np.testing.assert_array_equal(cls, [-1, 0, 1])

    def test_subset_and_mask(self):
        b = simple_system()
        sub = b.subset(np.array([2, 0]))
        assert len(sub) == 2
        np.testing.assert_array_equal(sub.centers[0], [5.0, 5.0])
        masked = b.take_mask(np.array([True, False, True]))
        assert len(masked) == 2

    def test_union(self):
        a = simple_system()
        b = BallSystem(np.array([[9.0, 9.0]]), np.array([1.0]))
        u = union(a, b)
        assert len(u) == 4

    def test_union_dim_mismatch(self):
        a = simple_system()
        with pytest.raises(ValueError):
            union(a, BallSystem(np.zeros((1, 3)), np.ones(1)))

    def test_centers_inside_counts_self(self):
        b = BallSystem(np.array([[0.0, 0.0]]), np.array([1.0]))
        assert b.centers_inside_counts()[0] == 1  # own center always inside
