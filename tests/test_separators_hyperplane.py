"""Median hyperplane cuts (the Bentley baseline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pvm.machine import Machine
from repro.separators.hyperplane import find_median_hyperplane, median_hyperplane
from repro.workloads import uniform_cube


class TestMedianHyperplane:
    def test_splits_roughly_in_half(self):
        pts = uniform_cube(1001, 2, 0)
        h = median_hyperplane(pts)
        side = h.side_of_points(pts)
        below = int((side < 0).sum())
        assert abs(below - 500) <= 1

    def test_explicit_axis(self):
        pts = uniform_cube(100, 3, 1)
        h = median_hyperplane(pts, axis=2)
        np.testing.assert_allclose(np.abs(h.normal), [0, 0, 1])

    def test_picks_widest_axis_by_default(self):
        rng = np.random.default_rng(2)
        pts = np.stack([rng.random(100) * 100, rng.random(100)], axis=1)
        h = median_hyperplane(pts)
        assert abs(h.normal[0]) == pytest.approx(1.0)

    def test_even_and_odd_counts(self):
        for n in (10, 11):
            pts = uniform_cube(n, 2, n)
            h = median_hyperplane(pts)
            side = h.side_of_points(pts)
            assert 0 < (side < 0).sum() < n

    def test_heavy_duplication_still_splits(self):
        pts = np.concatenate([np.zeros((90, 2)), np.ones((10, 2))])
        h = median_hyperplane(pts)
        side = h.side_of_points(pts)
        assert 0 < (side < 0).sum() < 100

    def test_identical_points_rejected(self):
        with pytest.raises(ValueError):
            median_hyperplane(np.ones((50, 2)))

    def test_single_point_rejected(self):
        with pytest.raises(ValueError):
            median_hyperplane(np.zeros((1, 2)))

    def test_duplicate_block_at_max(self):
        col = np.concatenate([np.zeros(5), np.full(95, 7.0)])
        pts = np.stack([col, np.zeros(100)], axis=1)
        h = median_hyperplane(pts, axis=0)
        side = h.side_of_points(pts)
        assert 0 < (side < 0).sum() < 100


class TestFindMedianHyperplane:
    def test_charges_selection_cost(self):
        pts = uniform_cube(512, 2, 3)
        m = Machine()
        _, attempts = find_median_hyperplane(pts, m)
        assert attempts == 1
        assert m.total.depth == pytest.approx(8.0)  # 4 compare + 4 scan rounds
        assert m.total.work == pytest.approx(8 * 512)
        assert m.counters["hyperplane_cuts"] == 1

    def test_depth_constant_in_n_unit_scan(self):
        depths = []
        for n in (256, 4096):
            m = Machine()
            find_median_hyperplane(uniform_cube(n, 2, n), m)
            depths.append(m.total.depth)
        assert depths[0] == depths[1]

    def test_log_scan_policy_scales_depth(self):
        m = Machine(scan="log")
        find_median_hyperplane(uniform_cube(1024, 2, 4), m)
        assert m.total.depth == pytest.approx(4 + 4 * 10)
