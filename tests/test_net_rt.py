"""End-to-end request observability on the HTTP front-end (ISSUE 9).

The acceptance contract: every response carries an ``X-Request-Id``
(client-supplied ids round-trip verbatim, generated ids are
deterministic), the ``/debug/*`` endpoints serve the flight recorder
with a queued/execute breakdown, tracing on/off leaves response bytes
identical, the drain summary reports server-side histogram percentiles
and SLO state, and the seeded load generator asserts id round-trip on
every request.
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.api import net_serve
from repro.net import NetConfig, ServerThread, http_fetch, run_load
from repro.workloads import uniform_cube

N = 300
D = 2
SEED = 23


def _fetch(port, path, payload=None, method="POST", headers=None):
    return asyncio.run(http_fetch("127.0.0.1", port, path, payload,
                                  method=method, headers=headers))


def _server(k=2, **cfg_kwargs):
    cfg_kwargs.setdefault("port", 0)
    cfg = NetConfig(**cfg_kwargs)
    pts = uniform_cube(N, D, seed=SEED)
    return net_serve(pts, k, net=cfg, seed=SEED + 1)


def _point(i=0):
    pts = uniform_cube(N, D, seed=SEED)
    return {"point": pts[i].tolist()}


class TestRequestId:
    def test_client_id_round_trips(self):
        with ServerThread(_server()) as st:
            status, _, _, headers = _fetch(
                st.port, "/v1/query", _point(),
                headers={"X-Request-Id": "my-id-042"})
        assert status == 200
        assert headers["x-request-id"] == "my-id-042"

    def test_generated_ids_are_deterministic(self):
        with ServerThread(_server()) as st:
            ids = []
            for i in range(3):
                status, _, _, headers = _fetch(st.port, "/v1/query", _point(i))
                assert status == 200
                ids.append(headers["x-request-id"])
        # per-server counter: r + 12 hex digits, strictly sequential
        assert ids == ["r000000000001", "r000000000002", "r000000000003"]

    def test_error_responses_carry_the_id(self):
        with ServerThread(_server()) as st:
            status, _, _, headers = _fetch(
                st.port, "/v1/query", {"point": "garbage"},
                headers={"X-Request-Id": "bad-req"})
            assert status == 400
            assert headers["x-request-id"] == "bad-req"
            status, _, _, headers = _fetch(
                st.port, "/nope", method="GET",
                headers={"X-Request-Id": "lost-route"})
            assert status == 404
            assert headers["x-request-id"] == "lost-route"

    def test_get_endpoints_carry_the_id(self):
        with ServerThread(_server()) as st:
            for path in ("/healthz", "/metrics", "/debug/vars"):
                _, _, _, headers = _fetch(st.port, path, method="GET")
                assert headers.get("x-request-id"), path

    def test_oversized_client_id_is_trimmed(self):
        with ServerThread(_server()) as st:
            status, _, _, headers = _fetch(
                st.port, "/v1/query", _point(),
                headers={"X-Request-Id": "x" * 500})
        assert status == 200
        assert headers["x-request-id"] == "x" * 128


class TestDebugEndpoints:
    def test_requests_and_slow_report_breakdown(self):
        with ServerThread(_server()) as st:
            for i in range(5):
                status, _, _, _ = _fetch(
                    st.port, "/v1/query", _point(i),
                    headers={"X-Request-Id": f"q-{i}"})
                assert status == 200
            status, body, _, _ = _fetch(st.port, "/debug/requests", method="GET")
            assert status == 200
            assert body["tracing"] is True and body["recorded"] == 5
            newest = body["requests"][0]
            assert newest["request_id"] == "q-4"
            assert newest["status"] == 200 and newest["kind"] == "knn"
            status, body, _, _ = _fetch(st.port, "/debug/slow", method="GET")
            assert status == 200
            worst = body["slowest"][0]
            # the breakdown the satellite requires: queue vs execute wall
            assert worst["queued_ms"] is not None
            assert worst["execute_ms"] is not None
            assert worst["total_ms"] >= worst["execute_ms"]
            assert worst["batch_size"] >= 1

    def test_limit_param_and_validation(self):
        with ServerThread(_server()) as st:
            for i in range(4):
                _fetch(st.port, "/v1/query", _point(i))
            status, body, _, _ = _fetch(
                st.port, "/debug/requests?limit=2", method="GET")
            assert status == 200 and len(body["requests"]) == 2
            status, _, _, _ = _fetch(
                st.port, "/debug/requests?limit=-1", method="GET")
            assert status == 400
            status, _, _, _ = _fetch(
                st.port, "/debug/slow?limit=zap", method="GET")
            assert status == 400

    def test_vars_snapshot(self):
        with ServerThread(_server(slo_p95_ms=100.0)) as st:
            _fetch(st.port, "/v1/query", _point())
            status, body, _, _ = _fetch(st.port, "/debug/vars", method="GET")
            assert status == 200
            assert body["tracing"] is True and not body["draining"]
            assert body["recorder"]["recorded"] == 1
            assert body["tenants"][0]["name"] == "default"
            assert "default" in body["slo"]
            assert body["counters"]["net.requests"] >= 1

    def test_tracing_off_keeps_debug_empty(self):
        with ServerThread(_server(trace_requests=False)) as st:
            _fetch(st.port, "/v1/query", _point())
            status, body, _, _ = _fetch(st.port, "/debug/requests", method="GET")
        assert status == 200
        assert body["tracing"] is False
        assert body["recorded"] == 0 and body["requests"] == []


class TestByteStability:
    def test_traced_and_untraced_responses_identical(self):
        """The zero-cost guarantee: tracing only decides *retention*."""
        pts = uniform_cube(N, D, seed=SEED)
        stream = [
            ("/v1/query", {"point": pts[i].tolist()}, f"s-{i}")
            for i in range(6)
        ] + [
            ("/v1/query", {"points": pts[6:9].tolist(), "k": 1}, "s-multi"),
            ("/v1/query", {"point": "bad"}, "s-bad"),
        ]

        def _drive(traced):
            out = []
            with ServerThread(_server(trace_requests=traced)) as st:
                for path, payload, rid in stream:
                    status, _, text, headers = _fetch(
                        st.port, path, payload,
                        headers={"X-Request-Id": rid})
                    out.append((status, text, headers["x-request-id"]))
            return out

        assert _drive(True) == _drive(False)


class TestMetricsAndDrain:
    def test_metrics_exposition_has_histograms_and_slo(self):
        with ServerThread(_server(slo_p95_ms=100.0)) as st:
            for i in range(3):
                _fetch(st.port, "/v1/query", _point(i))
            _, _, text, _ = _fetch(st.port, "/metrics", method="GET")
        assert "# TYPE repro_net_request_ms histogram" in text
        assert 'repro_net_request_ms_bucket{key="net.request_ms",le="+Inf"} 3.0' in text
        assert "# TYPE repro_serve_batch_ms histogram" in text
        assert "# TYPE repro_serve_queue_wait_ms histogram" in text
        assert 'repro_net_slo_target_ms{key="net.slo.target_ms"} 100.0' in text
        assert "repro_net_slo_attainment_5m" in text

    def test_drain_summary_reports_histogram_and_slo(self):
        st = ServerThread(_server(slo_p95_ms=100.0)).start()
        try:
            for i in range(4):
                status, _, _, _ = _fetch(st.port, "/v1/query", _point(i))
                assert status == 200
        finally:
            summary = st.stop()
        assert summary["clean"]
        rq = summary["request_ms"]
        assert rq["count"] == 4 and rq["p95"] >= rq["p50"] > 0
        slo = summary["slo"]["default"]
        assert slo["target_ms"] == 100.0 and slo["total"] == 4
        assert slo["windows"]["5m"]["attainment"] == 1.0

    def test_queue_depth_gauge_zeroed_only_after_drain(self):
        """The satellite fix: close(flush=False) leaves the gauge; the
        drain zeroes it once close_all completes."""
        st = ServerThread(_server()).start()
        try:
            _fetch(st.port, "/v1/query", _point())
            tenant = st.server.tenants.get()
        finally:
            summary = st.stop()
        assert summary["clean"]
        assert tenant.batcher.stats.queue_depth == 0

    def test_window_latency_source_slo_serves(self):
        cfg = dict(slo_p95_ms=50.0, window_latency_source="slo")
        with ServerThread(_server(**cfg)) as st:
            for i in range(5):
                status, _, _, _ = _fetch(st.port, "/v1/query", _point(i))
                assert status == 200
            state = st.server._loops["default"]
            assert state.window is not None and state.slo is not None
            assert state.window.latency_source is not None
            # the window's p95 feed is the tracker's rolling histogram
            assert state.window.observed_p95_ms() == state.slo.p95_ms()


class TestLoadgenRoundTrip:
    def test_seeded_ids_round_trip_with_zero_mismatches(self):
        pts = uniform_cube(N, D, seed=SEED)
        with ServerThread(_server()) as st:
            result = asyncio.run(run_load(
                "127.0.0.1", st.port, qps=120.0, duration_s=0.5,
                points=pts, k=2, seed=5))
        assert result.sent >= 50
        assert result.ok == result.sent
        assert result.id_mismatches == 0
        assert result.to_dict()["id_mismatches"] == 0

    def test_rejections_also_counted_not_mismatched(self):
        pts = uniform_cube(N, D, seed=SEED)
        with ServerThread(_server(max_inflight=1, max_wait_ms=50.0,
                                  adaptive=False)) as st:
            result = asyncio.run(run_load(
                "127.0.0.1", st.port, qps=300.0, duration_s=0.4,
                points=pts, k=2, seed=6))
        # 429s still echo the request id, so no mismatches either way
        assert result.id_mismatches == 0
        assert result.sent == result.ok + result.rejected + result.errors
