"""Partition-tree invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fast_dnc import parallel_nearest_neighborhood
from repro.core.partition_tree import PartitionNode
from repro.geometry.spheres import Sphere
from repro.workloads import uniform_cube


def manual_tree() -> PartitionNode:
    left = PartitionNode(indices=np.array([0, 1]))
    right = PartitionNode(indices=np.array([2, 3]))
    sep = Sphere(np.array([0.0, 0.0]), 1.0)
    return PartitionNode(indices=np.array([0, 1, 2, 3]), separator=sep, left=left, right=right)


class TestConstruction:
    def test_leaf(self):
        leaf = PartitionNode(indices=np.array([5, 6]))
        assert leaf.is_leaf and leaf.size == 2 and leaf.height() == 0

    def test_internal(self):
        t = manual_tree()
        assert not t.is_leaf and t.height() == 1

    def test_separator_without_children_rejected(self):
        with pytest.raises(ValueError):
            PartitionNode(indices=np.array([0]), separator=Sphere(np.zeros(2), 1.0))

    def test_children_without_separator_rejected(self):
        with pytest.raises(ValueError):
            PartitionNode(
                indices=np.array([0, 1]),
                left=PartitionNode(indices=np.array([0])),
                right=PartitionNode(indices=np.array([1])),
            )


class TestTraversal:
    def test_leaves_left_to_right(self):
        t = manual_tree()
        leaves = list(t.leaves())
        assert [leaf.indices.tolist() for leaf in leaves] == [[0, 1], [2, 3]]

    def test_nodes_preorder(self):
        t = manual_tree()
        sizes = [n.size for n in t.nodes()]
        assert sizes == [4, 2, 2]

    def test_check_partition_valid(self):
        assert manual_tree().check_partition()

    def test_check_partition_detects_violation(self):
        t = manual_tree()
        t.left.indices = np.array([0, 9])
        assert not t.check_partition()


class TestRealTreeInvariants:
    @pytest.fixture(scope="class")
    def result(self):
        pts = uniform_cube(600, 2, 99)
        return parallel_nearest_neighborhood(pts, 1, seed=5), pts

    def test_partition_invariant(self, result):
        res, _ = result
        assert res.tree.check_partition()

    def test_root_covers_everything(self, result):
        res, pts = result
        assert res.tree.size == pts.shape[0]
        np.testing.assert_array_equal(np.sort(res.tree.indices), np.arange(600))

    def test_leaf_of_point_contains_it(self, result):
        res, pts = result
        for i in range(0, 600, 71):
            leaf = res.tree.leaf_of_point(pts[i])
            assert i in leaf.indices.tolist()

    def test_height_reasonable(self, result):
        res, _ = result
        # 600 points with base-case 64 and delta <= 0.8 -> a handful of levels
        assert 2 <= res.tree.height() <= 20

    def test_internal_nodes_have_meta(self, result):
        res, _ = result
        for node in res.tree.nodes():
            if not node.is_leaf:
                assert "punted" in node.meta and "iota" in node.meta


class TestLeavesOfPoints:
    """Vectorized group descent vs the scalar leaf_of_point reference."""

    @pytest.fixture(scope="class")
    def result(self):
        pts = uniform_cube(600, 2, 99)
        return parallel_nearest_neighborhood(pts, 1, seed=5), pts

    def test_matches_leaf_of_point_and_partitions_rows(self, result):
        res, pts = result
        queries = np.concatenate([pts[::7], pts[:20] + 1e-4])
        seen = []
        for leaf, rows in res.tree.leaves_of_points(queries):
            assert rows.shape[0] > 0
            seen.extend(rows.tolist())
            for r in rows:
                assert res.tree.leaf_of_point(queries[r]) is leaf
        assert sorted(seen) == list(range(queries.shape[0]))

    def test_leaves_arrive_left_to_right(self, result):
        res, pts = result
        order = {id(leaf): i for i, leaf in enumerate(res.tree.leaves())}
        visited = [order[id(leaf)]
                   for leaf, _ in res.tree.leaves_of_points(pts[::11])]
        assert visited == sorted(visited)

    def test_empty_and_single_point(self, result):
        res, pts = result
        assert list(res.tree.leaves_of_points(pts[:0])) == []
        ((leaf, rows),) = res.tree.leaves_of_points(pts[:1])
        assert rows.tolist() == [0]
        assert res.tree.leaf_of_point(pts[0]) is leaf
