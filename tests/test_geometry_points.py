"""Point utilities: validation, distance kernels, k-smallest selection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.geometry.points import (
    as_points,
    bounding_box,
    chunked_pairs,
    diameter_upper_bound,
    kth_smallest_per_row,
    pairwise_sq_dists,
    sq_dists_to,
)

point_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 40), st.integers(1, 5)),
    elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
)


class TestAsPoints:
    def test_accepts_lists(self):
        out = as_points([[1, 2], [3, 4]])
        assert out.dtype == np.float64 and out.shape == (2, 2)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            as_points(np.zeros(5))

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            as_points(np.zeros((2, 2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            as_points([[np.nan, 0.0]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            as_points([[np.inf, 0.0]])

    def test_min_points_enforced(self):
        with pytest.raises(ValueError):
            as_points(np.zeros((1, 2)), min_points=2)

    def test_contiguous_output(self):
        arr = np.asfortranarray(np.random.default_rng(0).random((5, 3)))
        assert as_points(arr).flags["C_CONTIGUOUS"]


class TestDistances:
    @given(point_arrays)
    def test_pairwise_matches_naive(self, pts):
        sq = pairwise_sq_dists(pts, pts)
        naive = ((pts[:, None, :] - pts[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(sq, naive, rtol=1e-7, atol=1e-6)

    @given(point_arrays)
    def test_pairwise_diag_zero(self, pts):
        sq = pairwise_sq_dists(pts, pts)
        np.testing.assert_allclose(np.diag(sq), 0.0, atol=1e-6)

    @given(point_arrays)
    def test_pairwise_nonnegative(self, pts):
        assert (pairwise_sq_dists(pts, pts) >= 0).all()

    @given(point_arrays)
    def test_sq_dists_to_matches_row(self, pts):
        q = pts[0]
        np.testing.assert_allclose(
            sq_dists_to(pts, q), pairwise_sq_dists(pts, q[None, :])[:, 0], rtol=1e-7, atol=1e-6
        )

    def test_rectangular_shapes(self):
        a = np.zeros((3, 2))
        b = np.ones((5, 2))
        assert pairwise_sq_dists(a, b).shape == (3, 5)


class TestBoundingBox:
    def test_box_and_diameter(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0], [1.0, 1.0]])
        lo, hi = bounding_box(pts)
        np.testing.assert_array_equal(lo, [0, 0])
        np.testing.assert_array_equal(hi, [3, 4])
        assert diameter_upper_bound(pts) == pytest.approx(5.0)

    @given(point_arrays)
    def test_diameter_bound_dominates_true_diameter(self, pts):
        sq = pairwise_sq_dists(pts, pts)
        true = np.sqrt(sq.max())
        # the GEMM kernel's cancellation error is absolute at the scale of
        # the squared coordinates; sqrt amplifies it near zero, so allow a
        # coordinate-scaled absolute slack on top of the relative one
        scale = 1.0 + np.abs(pts).max()
        assert diameter_upper_bound(pts) >= true * (1 - 1e-9) - 1e-6 * scale


class TestChunkedPairs:
    def test_covers_range_without_overlap(self):
        spans = list(chunked_pairs(10, 3))
        assert spans == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_single_chunk(self):
        assert list(chunked_pairs(5, 100)) == [(0, 5)]

    def test_zero_n(self):
        assert list(chunked_pairs(0, 4)) == []

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            list(chunked_pairs(5, 0))


class TestKthSmallest:
    def test_small_example(self):
        sq = np.array([[4.0, 1.0, 3.0, 2.0]])
        idx, vals = kth_smallest_per_row(sq, 2)
        np.testing.assert_array_equal(idx, [[1, 3]])
        np.testing.assert_array_equal(vals, [[1.0, 2.0]])

    def test_k_equals_width_full_sort(self):
        sq = np.array([[3.0, 1.0, 2.0]])
        idx, vals = kth_smallest_per_row(sq, 3)
        np.testing.assert_array_equal(idx, [[1, 2, 0]])
        np.testing.assert_array_equal(vals, [[1.0, 2.0, 3.0]])

    def test_tie_broken_by_column(self):
        sq = np.array([[1.0, 1.0, 1.0, 0.5]])
        idx, _ = kth_smallest_per_row(sq, 2)
        assert idx[0, 0] == 3
        assert idx[0, 1] in (0, 1, 2)

    def test_out_of_range_k(self):
        with pytest.raises(ValueError):
            kth_smallest_per_row(np.zeros((2, 3)), 4)
        with pytest.raises(ValueError):
            kth_smallest_per_row(np.zeros((2, 3)), 0)

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 20), st.integers(2, 15)),
            elements=st.floats(min_value=0, max_value=1e6, allow_nan=False),
        ),
        st.data(),
    )
    def test_values_match_full_sort(self, sq, data):
        k = data.draw(st.integers(min_value=1, max_value=sq.shape[1]))
        _, vals = kth_smallest_per_row(sq, k)
        expected = np.sort(sq, axis=1)[:, :k]
        np.testing.assert_allclose(vals, expected)

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 20), st.integers(2, 15)),
            elements=st.floats(min_value=0, max_value=1e6, allow_nan=False),
        )
    )
    def test_rows_sorted_ascending(self, sq):
        _, vals = kth_smallest_per_row(sq, min(3, sq.shape[1]))
        assert (np.diff(vals, axis=1) >= 0).all()
