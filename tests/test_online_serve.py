"""Serving-layer integration of online updates: version-keyed caching,
batcher/pool hot swaps and the snapshot registry.

The invariants under test: a result cached against one index version can
never answer a query after a swap (keys embed the version); a request
accepted under version v is always answered by version v (the batcher
flushes before rebinding); and a live :class:`ServingPool` swap leaves
no torn reads — every in-flight and subsequent answer matches a serial
execution against a single consistent version.
"""

import numpy as np
import pytest

from repro.core.online import MutableIndex
from repro.serve import (
    Batcher,
    ResultCache,
    ServingIndex,
    ServingPool,
    SnapshotRegistry,
)
from repro.workloads import uniform_cube


def _mutated(index: MutableIndex, seed: int = 0, ins: int = 3, dels: int = 2):
    rng = np.random.default_rng(seed)
    if ins:
        index.insert(rng.random((ins, index.d)))
    if dels:
        index.delete(rng.choice(index.n, size=dels, replace=False))
    index.commit()
    return index


class TestVersionKeyedCache:
    def test_make_key_includes_version(self):
        cache = ResultCache(8)
        p = np.array([0.25, 0.75])
        assert cache.make_key("knn", 2, p, 0) != cache.make_key("knn", 2, p, 1)
        # same version, same point -> same key (cacheable)
        assert cache.make_key("knn", 2, p, 3) == cache.make_key("knn", 2, p, 3)

    def test_flipped_point_not_served_from_stale_cache(self):
        """The regression: flip a point, swap, re-query the same probe."""
        pts = uniform_cube(300, 2, seed=1)
        mutable = MutableIndex(pts, k=1, seed=2, churn_threshold=0.5)
        probe = pts[42].copy()
        cache = ResultCache(64)
        batcher = Batcher(mutable.snapshot(), kind="knn", k=1,
                          max_batch=4, cache=cache)
        t0 = batcher.submit(probe)
        batcher.flush()
        old_answer = t0.value
        # delete the probe's nearest neighbor, then re-query the probe
        victim = int(old_answer[0][0])
        mutable.delete([victim])
        mutable.commit()
        batcher.swap_index(mutable.snapshot())
        t1 = batcher.submit(probe)
        assert not t1.cached, "stale cache entry survived the version swap"
        batcher.flush()
        want_idx, want_sq = mutable.snapshot().execute("knn", probe[None, :], 1)
        np.testing.assert_array_equal(t1.value[0], want_idx[0])
        np.testing.assert_array_equal(t1.value[1], want_sq[0])
        # and the answers genuinely differ across versions
        assert not np.array_equal(t1.value[1], old_answer[1])

    def test_same_version_still_caches(self):
        pts = uniform_cube(200, 2, seed=3)
        index = ServingIndex.build(pts, 1, seed=4)
        batcher = Batcher(index, kind="knn", k=1, max_batch=4,
                          cache=ResultCache(16))
        p = pts[5] + 1e-6
        a = batcher.submit(p)
        batcher.flush()
        b = batcher.submit(p)
        assert b.cached
        np.testing.assert_array_equal(a.value[0], b.value[0])


class TestBatcherSwap:
    def test_swap_flushes_pending_against_old_version(self):
        pts = uniform_cube(260, 2, seed=5)
        mutable = MutableIndex(pts, k=2, seed=6, churn_threshold=0.5)
        snap0 = mutable.snapshot()
        batcher = Batcher(snap0, kind="knn", k=2, max_batch=100)
        probes = uniform_cube(7, 2, seed=55)
        tickets = [batcher.submit(row) for row in probes]
        assert batcher.pending == 7
        _mutated(mutable, seed=7)
        flushed = batcher.swap_index(mutable.snapshot())
        assert flushed == 7
        # pending requests were answered by the OLD version
        want = snap0.execute("knn", probes, 2)
        for i, t in enumerate(tickets):
            assert t.done
            np.testing.assert_array_equal(t.value[0], want[0][i])
        # new submissions are answered by the new version
        t_new = batcher.submit(probes[0])
        batcher.flush()
        want_new = mutable.snapshot().execute("knn", probes[:1], 2)
        np.testing.assert_array_equal(t_new.value[0], want_new[0][0])
        assert batcher.stats.swaps == 1
        assert batcher.stats.index_version == 1

    def test_swap_validates(self):
        pts = uniform_cube(120, 2, seed=8)
        index = ServingIndex.build(pts, 1, seed=9)
        batcher = Batcher(index, kind="knn", k=1)
        bad = ServingIndex.build(uniform_cube(60, 3, seed=10), 1, seed=11)
        with pytest.raises(ValueError, match="dimension"):
            batcher.swap_index(bad)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.swap_index(index)

    def test_covering_swap_needs_system(self):
        pts = uniform_cube(120, 2, seed=12)
        index = ServingIndex.build(pts, 2, seed=13, with_structure=True)
        batcher = Batcher(index, kind="covering")
        bare = ServingIndex(pts, index.tree, 2)  # no system
        with pytest.raises(ValueError, match="system"):
            batcher.swap_index(bare)


class TestPoolHotSwap:
    def test_live_pool_swap_no_torn_reads(self):
        pts = uniform_cube(500, 2, seed=14)
        mutable = MutableIndex(pts, k=2, seed=15, churn_threshold=0.5)
        snap0 = mutable.snapshot()
        queries = uniform_cube(240, 2, seed=66)
        with ServingPool(snap0, workers=2, min_shard=16) as pool:
            batcher = Batcher(snap0, kind="knn", k=2, max_batch=48, pool=pool)
            tickets, versions = [], []
            for i, row in enumerate(queries):
                if i == 120:  # swap mid-stream, queue part-filled
                    _mutated(mutable, seed=16)
                    batcher.swap_index(mutable.snapshot())
                tickets.append(batcher.submit(row))
                versions.append(batcher.index.version)
            batcher.close()  # flushes the tail
            assert all(t.done for t in tickets), "torn/unfulfilled queries"
            by_version = {0: snap0, 1: mutable.snapshot()}
            for t, v, row in zip(tickets, versions, queries):
                want = by_version[v].execute("knn", row[None, :], 2)
                np.testing.assert_array_equal(t.value[0], want[0][0])
                np.testing.assert_array_equal(t.value[1], want[1][0])
            assert batcher.stats.swaps == 1

    def test_pool_swap_closed_raises(self):
        pts = uniform_cube(100, 2, seed=17)
        index = ServingIndex.build(pts, 1, seed=18)
        pool = ServingPool(index, workers=1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.swap(index)


class TestSnapshotRegistry:
    def test_publish_get_latest(self):
        pts = uniform_cube(150, 2, seed=19)
        mutable = MutableIndex(pts, k=1, seed=20, churn_threshold=0.5)
        reg = SnapshotRegistry(capacity=2)
        assert len(reg) == 0
        assert reg.latest_version is None
        with pytest.raises(LookupError):
            reg.latest
        assert reg.publish(mutable.snapshot()) == 0
        _mutated(mutable, seed=21)
        assert reg.publish(mutable.snapshot()) == 1
        assert reg.latest.version == 1
        assert reg.versions() == [0, 1]
        assert reg.get(0).version == 0
        assert reg.get().version == 1

    def test_capacity_prunes_oldest(self):
        pts = uniform_cube(150, 2, seed=22)
        mutable = MutableIndex(pts, k=1, seed=23, churn_threshold=0.5)
        reg = SnapshotRegistry(capacity=2)
        reg.publish(mutable.snapshot())
        for s in (24, 25):
            _mutated(mutable, seed=s)
            reg.publish(mutable.snapshot())
        assert reg.versions() == [1, 2]
        with pytest.raises(LookupError, match="not retained"):
            reg.get(0)

    def test_rejects_stale_or_duplicate_versions(self):
        pts = uniform_cube(120, 2, seed=26)
        mutable = MutableIndex(pts, k=1, seed=27, churn_threshold=0.5)
        reg = SnapshotRegistry()
        snap = mutable.snapshot()
        reg.publish(snap)
        with pytest.raises(ValueError, match="already published"):
            reg.publish(snap)

    def test_subscriber_drives_hot_swap(self):
        pts = uniform_cube(200, 2, seed=28)
        mutable = MutableIndex(pts, k=1, seed=29, churn_threshold=0.5)
        reg = SnapshotRegistry()
        batcher = Batcher(mutable.snapshot(), kind="knn", k=1)
        unsubscribe = reg.subscribe(batcher.swap_index)
        _mutated(mutable, seed=30)
        reg.publish(mutable.snapshot())
        assert batcher.index.version == 1
        unsubscribe()
        _mutated(mutable, seed=31)
        reg.publish(mutable.snapshot())
        assert batcher.index.version == 1  # no longer following


class TestSnapshotPersistence:
    def test_pickle_round_trip_keeps_version(self, tmp_path):
        pts = uniform_cube(130, 2, seed=32)
        mutable = MutableIndex(pts, k=1, seed=33, churn_threshold=0.5)
        _mutated(mutable, seed=34)
        snap = mutable.snapshot()
        path = str(tmp_path / "index.pkl")
        snap.save(path)
        loaded = ServingIndex.load(path)
        assert loaded.version == 1
        np.testing.assert_array_equal(loaded.points, snap.points)

    def test_pre_16_snapshots_default_to_version_zero(self):
        pts = uniform_cube(90, 2, seed=35)
        snap = ServingIndex.build(pts, 1, seed=36)
        state = snap._state()
        del state["index_version"]  # what a pre-1.6 pickle looks like
        assert ServingIndex._from_state(state).version == 0


class TestCacheSwapMemory:
    """Satellite of ISSUE 8: repeated hot swaps must not grow the cache.

    Version-keyed entries for superseded versions can never match again;
    ``swap_index`` evicts them eagerly so the cache footprint stays
    bounded by *live* entries, not by swap count.
    """

    def test_evict_stale_drops_only_other_versions(self):
        cache = ResultCache(64)
        p = np.array([0.5, 0.25])
        q = np.array([0.125, 0.75])
        cache.put(cache.make_key("knn", 1, p, 0), "v0-p")
        cache.put(cache.make_key("knn", 1, q, 0), "v0-q")
        cache.put(cache.make_key("knn", 1, p, 1), "v1-p")
        assert cache.evict_stale(1) == 2
        assert len(cache) == 1
        assert cache.get(cache.make_key("knn", 1, p, 1)) == "v1-p"
        assert cache.get(cache.make_key("knn", 1, p, 0)) is None
        assert cache.evict_stale(1) == 0  # idempotent

    def test_swap_index_evicts_old_version_entries(self):
        pts = uniform_cube(250, 2, seed=40)
        mutable = MutableIndex(pts, k=1, seed=41, churn_threshold=0.5)
        cache = ResultCache(512)
        batcher = Batcher(mutable.snapshot(), kind="knn", k=1,
                          max_batch=16, cache=cache)
        probes = uniform_cube(20, 2, seed=42)
        for row in probes:
            batcher.submit(row)
        batcher.flush()
        assert len(cache) == 20
        _mutated(mutable, seed=43)
        batcher.swap_index(mutable.snapshot())
        assert len(cache) == 0  # every v0 entry was unreachable anyway

    def test_cache_stays_bounded_by_live_entries_across_n_swaps(self):
        pts = uniform_cube(300, 2, seed=44)
        mutable = MutableIndex(pts, k=1, seed=45, churn_threshold=0.5)
        cache = ResultCache(10_000)  # far above the working set
        batcher = Batcher(mutable.snapshot(), kind="knn", k=1,
                          max_batch=64, cache=cache)
        probes = uniform_cube(30, 2, seed=46)
        for swap in range(6):
            for row in probes:
                batcher.submit(row)
            batcher.flush()
            # without eviction this would grow ~30 entries per swap
            assert len(cache) <= probes.shape[0]
            _mutated(mutable, seed=47 + swap, ins=2, dels=1)
            batcher.swap_index(mutable.snapshot())
        current = f"v{batcher.index.version}".encode()
        assert all(key.split(b":", 3)[2] == current
                   for key in cache._entries)
