"""Correction machinery: marching reachability, merges, punt equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.correction import apply_candidate_pairs, march_balls, query_correction_pairs
from repro.core.fast_dnc import parallel_nearest_neighborhood
from repro.core.query import QueryConfig
from repro.geometry.balls import BallSystem
from repro.pvm.machine import Machine
from repro.workloads import uniform_cube


@pytest.fixture(scope="module")
def tree_and_points():
    pts = uniform_cube(800, 2, 50)
    res = parallel_nearest_neighborhood(pts, 1, seed=3)
    return res.tree, pts


class TestMarchBalls:
    def test_finds_every_contained_point(self, tree_and_points):
        """Reachability (Lemma 6.3): every point strictly inside a marched
        ball appears among its candidate pairs."""
        tree, pts = tree_and_points
        rng = np.random.default_rng(4)
        centers = rng.random((25, 2))
        radii = rng.random(25) * 0.2 + 0.02
        result = march_balls(tree, pts, centers, radii)
        assert result.succeeded
        got = {(int(b), int(p)) for b, p in zip(result.ball_rows, result.point_ids)}
        diff = pts[None, :, :] - centers[:, None, :]
        sq = np.einsum("bnd,bnd->bn", diff, diff)
        inside = sq < np.square(radii)[:, None]
        want = {(b, p) for b, p in zip(*np.nonzero(inside))}
        assert want <= got  # all true containments found
        # and nothing wildly spurious: every reported pair is a containment
        assert got == want

    def test_inf_radius_ball_reaches_all_points(self, tree_and_points):
        tree, pts = tree_and_points
        result = march_balls(tree, pts, np.array([[0.5, 0.5]]), np.array([np.inf]))
        assert result.succeeded
        assert set(result.point_ids.tolist()) == set(range(pts.shape[0]))

    def test_empty_ball_set(self, tree_and_points):
        tree, pts = tree_and_points
        result = march_balls(tree, pts, np.zeros((0, 2)), np.zeros(0))
        assert result.pairs == 0 and result.succeeded

    def test_level_active_starts_at_ball_count(self, tree_and_points):
        tree, pts = tree_and_points
        centers = np.random.default_rng(5).random((10, 2))
        result = march_balls(tree, pts, centers, np.full(10, 0.05))
        assert result.level_active[0] == 10

    def test_active_cap_aborts(self, tree_and_points):
        tree, pts = tree_and_points
        centers = np.random.default_rng(6).random((40, 2))
        result = march_balls(tree, pts, centers, np.full(40, 0.5), active_cap=5)
        assert not result.succeeded

    def test_tiny_balls_do_not_duplicate_much(self, tree_and_points):
        """Small balls rarely straddle separators: actives stay ~ constant."""
        tree, pts = tree_and_points
        centers = np.random.default_rng(7).random((20, 2))
        result = march_balls(tree, pts, centers, np.full(20, 1e-4))
        assert max(result.level_active) <= 20 * 3

    def test_label_and_leaf_tests_counted(self, tree_and_points):
        tree, pts = tree_and_points
        centers = np.random.default_rng(8).random((5, 2))
        result = march_balls(tree, pts, centers, np.full(5, 0.1))
        assert result.label_tests > 0
        assert result.leaf_tests > 0


class TestApplyCandidatePairs:
    def test_basic_update(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0], [0.5, 0.0]])
        nbr_idx = np.array([[1], [0], [0]])
        nbr_sq = np.array([[100.0], [100.0], [0.25]])
        owners = np.array([0])
        changed = apply_candidate_pairs(
            pts, nbr_idx, nbr_sq, owners, np.array([0]), np.array([2]), k=1
        )
        assert changed == 1
        assert nbr_idx[0, 0] == 2
        assert nbr_sq[0, 0] == pytest.approx(0.25)

    def test_self_pairs_ignored(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        nbr_idx = np.array([[1], [0]])
        nbr_sq = np.array([[1.0], [1.0]])
        changed = apply_candidate_pairs(
            pts, nbr_idx, nbr_sq, np.array([0]), np.array([0]), np.array([0]), k=1
        )
        assert changed == 0

    def test_no_pairs_no_change(self):
        pts = np.zeros((2, 2))
        nbr_idx = np.array([[1], [0]])
        nbr_sq = np.zeros((2, 1))
        assert (
            apply_candidate_pairs(
                pts, nbr_idx, nbr_sq, np.array([0]), np.empty(0, int), np.empty(0, int), 1
            )
            == 0
        )

    def test_worse_candidates_do_not_degrade(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [5.0, 0.0]])
        nbr_idx = np.array([[1], [0], [1]])
        nbr_sq = np.array([[1.0], [1.0], [16.0]])
        changed = apply_candidate_pairs(
            pts, nbr_idx, nbr_sq, np.array([0]), np.array([0]), np.array([2]), k=1
        )
        assert changed == 0
        assert nbr_idx[0, 0] == 1

    def test_multiple_candidates_one_owner(self):
        pts = np.array([[0.0, 0.0], [3.0, 0.0], [2.0, 0.0], [1.0, 0.0]])
        nbr_idx = np.array([[1], [2], [3], [2]])
        nbr_sq = np.array([[9.0], [1.0], [1.0], [1.0]])
        apply_candidate_pairs(
            pts, nbr_idx, nbr_sq, np.array([0]), np.array([0, 0]), np.array([2, 3]), k=1
        )
        assert nbr_idx[0, 0] == 3
        assert nbr_sq[0, 0] == pytest.approx(1.0)


class TestQueryCorrectionEquivalence:
    def test_same_pairs_as_marching(self, tree_and_points):
        """The punt path and the fast path produce the same candidate set."""
        tree, pts = tree_and_points
        rng = np.random.default_rng(9)
        centers = rng.random((15, 2))
        radii = rng.random(15) * 0.15 + 0.02
        march = march_balls(tree, pts, centers, radii)
        system = BallSystem(centers, radii)
        all_ids = np.arange(pts.shape[0], dtype=np.int64)
        rows, ids = query_correction_pairs(
            system, pts, all_ids, None, 11, QueryConfig()
        )
        got = {(int(b), int(p)) for b, p in zip(rows, ids)}
        want = {(int(b), int(p)) for b, p in zip(march.ball_rows, march.point_ids)}
        assert got == want

    def test_empty_inputs(self):
        system = BallSystem(np.zeros((0, 2)), np.zeros(0))
        rows, ids = query_correction_pairs(
            system, np.zeros((0, 2)), np.zeros(0, dtype=int), None, 0, QueryConfig()
        )
        assert rows.size == 0 and ids.size == 0

    def test_machine_charged_when_supplied(self, tree_and_points):
        _, pts = tree_and_points
        centers = np.random.default_rng(10).random((60, 2))
        system = BallSystem(centers, np.full(60, 0.05))
        m = Machine()
        query_correction_pairs(
            system, pts, np.arange(pts.shape[0]), m, 12, QueryConfig()
        )
        assert m.total.depth > 0 and m.total.work > 0
