"""Parallel Nearest Neighborhood (Section 6): exactness everywhere, stats,
cost profile.  The central correctness test of the whole reproduction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import brute_force_knn
from repro.core.fast_dnc import FastDnCConfig, parallel_nearest_neighborhood
from repro.core.punting import punted_weighted_depth
from repro.pvm.machine import Machine
from repro.workloads import (
    annulus,
    clustered,
    collinear,
    gaussian,
    grid_jitter,
    uniform_cube,
    with_duplicates,
)


class TestExactness:
    @pytest.mark.parametrize("workload", [uniform_cube, clustered, gaussian, annulus, grid_jitter])
    @pytest.mark.parametrize("d", [2, 3])
    def test_matches_brute_force(self, workload, d):
        pts = workload(500, d, 7)
        res = parallel_nearest_neighborhood(pts, 2, seed=1)
        assert res.system.same_distances(brute_force_knn(pts, 2))

    @pytest.mark.parametrize("k", [1, 2, 4, 8])
    def test_k_sweep(self, k):
        pts = uniform_cube(400, 2, 8)
        res = parallel_nearest_neighborhood(pts, k, seed=2)
        assert res.system.same_distances(brute_force_knn(pts, k))

    def test_d4(self):
        pts = uniform_cube(400, 4, 9)
        res = parallel_nearest_neighborhood(pts, 1, seed=3)
        assert res.system.same_distances(brute_force_knn(pts, 1))

    def test_collinear_points(self):
        pts = collinear(300, 2, 10)
        res = parallel_nearest_neighborhood(pts, 2, seed=4)
        assert res.system.same_distances(brute_force_knn(pts, 2))

    def test_duplicate_points(self):
        pts = with_duplicates(uniform_cube(300, 2, 11), 0.3, 12)
        res = parallel_nearest_neighborhood(pts, 2, seed=5)
        assert res.system.same_distances(brute_force_knn(pts, 2))

    def test_all_identical_points(self):
        pts = np.ones((200, 2))
        res = parallel_nearest_neighborhood(pts, 1, seed=6)
        assert res.system.same_distances(brute_force_knn(pts, 1))
        assert res.stats.punts_separator >= 1

    def test_neighbor_indices_exact_generic_position(self):
        """Without ties, even the index sets must match."""
        pts = gaussian(500, 3, 13)
        res = parallel_nearest_neighborhood(pts, 3, seed=7)
        bf = brute_force_knn(pts, 3)
        np.testing.assert_array_equal(res.system.neighbor_indices, bf.neighbor_indices)

    def test_tiny_inputs(self):
        for n in (1, 2, 3, 5):
            pts = uniform_cube(n, 2, n)
            k = 1
            res = parallel_nearest_neighborhood(pts, k, seed=8)
            assert res.system.same_distances(brute_force_knn(pts, k))

    def test_n_below_k_plus_one_pads(self):
        pts = uniform_cube(3, 2, 20)
        res = parallel_nearest_neighborhood(pts, 2, seed=9)
        assert res.system.is_complete()  # 3 points, k=2: exactly complete

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            parallel_nearest_neighborhood(uniform_cube(10, 2, 0), 0)
        with pytest.raises(ValueError):
            parallel_nearest_neighborhood(uniform_cube(10, 2, 0), 10)

    def test_small_m0_stresses_corrections(self):
        """A tiny base case forces many correction rounds; exactness holds."""
        cfg = FastDnCConfig(base_case_size=8, base_factor=2)
        pts = uniform_cube(600, 2, 14)
        res = parallel_nearest_neighborhood(pts, 1, seed=10, config=cfg)
        assert res.system.same_distances(brute_force_knn(pts, 1))

    def test_forced_punts_still_exact(self):
        """iota_factor 0-ish forces the punt path at every node."""
        cfg = FastDnCConfig(iota_factor=1e-9)
        pts = uniform_cube(500, 2, 15)
        res = parallel_nearest_neighborhood(pts, 1, seed=11, config=cfg)
        assert res.stats.punts_iota > 0
        assert res.system.same_distances(brute_force_knn(pts, 1))

    def test_forced_marching_punts_still_exact(self):
        """A tiny active cap forces marching to abort and punt."""
        cfg = FastDnCConfig(active_factor=1e-9, active_slack=0.0)
        pts = uniform_cube(500, 2, 16)
        res = parallel_nearest_neighborhood(pts, 1, seed=12, config=cfg)
        assert res.stats.punts_marching > 0
        assert res.system.same_distances(brute_force_knn(pts, 1))


class TestDeterminismAndStats:
    def test_seeded_runs_identical(self):
        pts = uniform_cube(400, 2, 17)
        a = parallel_nearest_neighborhood(pts, 2, seed=99)
        b = parallel_nearest_neighborhood(pts, 2, seed=99)
        np.testing.assert_array_equal(a.system.neighbor_indices, b.system.neighbor_indices)
        assert a.cost == b.cost

    def test_stats_populated(self):
        pts = uniform_cube(800, 2, 18)
        res = parallel_nearest_neighborhood(pts, 1, seed=13)
        s = res.stats
        assert s.nodes >= 3
        assert s.base_cases >= 2
        assert s.separator_attempts >= s.nodes - s.base_cases - s.punts_separator
        assert len(s.straddler_fraction) == s.nodes - s.base_cases
        assert s.corrections_fast + s.corrections_none + s.punts >= s.nodes - s.base_cases

    def test_straddler_fractions_sublinear(self):
        pts = uniform_cube(2000, 2, 19)
        res = parallel_nearest_neighborhood(pts, 1, seed=14)
        for m, iota in res.stats.straddler_fraction:
            assert iota <= max(8, 6 * m**0.75)

    def test_punted_weighted_depth_small(self):
        pts = uniform_cube(1500, 2, 20)
        res = parallel_nearest_neighborhood(pts, 1, seed=15)
        # Theorem 6.1 / Punting Lemma: weighted depth O(log n)
        assert punted_weighted_depth(res.tree) <= 4 * np.log2(1500)

    def test_external_machine_used(self):
        m = Machine(scan="log")
        pts = uniform_cube(300, 2, 21)
        res = parallel_nearest_neighborhood(pts, 1, machine=m, seed=16)
        assert res.machine is m
        assert m.total.work > 0


class TestCostProfile:
    def test_depth_grows_slowly(self):
        """O(log n): depth per doubling is bounded by a constant."""
        depths = {}
        for n in (1024, 4096, 16384):
            pts = uniform_cube(n, 2, n)
            res = parallel_nearest_neighborhood(pts, 1, seed=17)
            depths[n] = res.cost.depth
        inc1 = depths[4096] - depths[1024]
        inc2 = depths[16384] - depths[4096]
        # both two-doubling increments bounded and not exploding
        assert inc2 <= max(2.0 * inc1, inc1 + 120)

    def test_work_near_linear(self):
        works = {}
        for n in (1024, 8192):
            pts = uniform_cube(n, 2, n + 1)
            res = parallel_nearest_neighborhood(pts, 1, seed=18)
            works[n] = res.cost.work
        assert works[8192] <= works[1024] * 8 * 2.5  # near-linear with slack

    def test_work_at_least_n(self):
        pts = uniform_cube(1000, 2, 22)
        res = parallel_nearest_neighborhood(pts, 1, seed=19)
        assert res.cost.work >= 1000
