"""Brent scheduling: bounds, monotonicity, curve structure."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pvm.cost import Cost
from repro.pvm.scheduler import brent_time, efficiency, schedule_curve, speedup

costs = st.builds(
    Cost,
    depth=st.floats(min_value=0.1, max_value=1e6, allow_nan=False),
    work=st.floats(min_value=0.1, max_value=1e9, allow_nan=False),
)


class TestBrentTime:
    def test_formula(self):
        assert brent_time(Cost(10, 1000), 10) == 110.0

    def test_one_processor_is_work_plus_depth(self):
        assert brent_time(Cost(5, 100), 1) == 105.0

    def test_invalid_processor_count(self):
        with pytest.raises(ValueError):
            brent_time(Cost(1, 1), 0)

    @given(costs, st.integers(min_value=1, max_value=10_000))
    def test_never_below_depth(self, c, p):
        assert brent_time(c, p) >= c.depth

    @given(costs, st.integers(min_value=1, max_value=10_000))
    def test_never_below_work_over_p(self, c, p):
        assert brent_time(c, p) >= c.work / p

    @given(costs, st.integers(min_value=1, max_value=5_000))
    def test_monotone_in_processors(self, c, p):
        assert brent_time(c, p + 1) <= brent_time(c, p)


class TestSpeedup:
    def test_perfect_when_depth_negligible(self):
        s = speedup(Cost(1, 1_000_000), 100)
        assert s == pytest.approx(100, rel=1e-3)

    def test_capped_by_parallelism(self):
        c = Cost(10, 1000)  # parallelism 100
        assert speedup(c, 10**6) <= c.parallelism + 1e-9

    @given(costs, st.integers(min_value=1, max_value=10_000))
    def test_speedup_at_most_p(self, c, p):
        assert speedup(c, p) <= p + 1e-9

    @given(costs)
    def test_single_processor_speedup_below_one(self, c):
        assert speedup(c, 1) <= 1.0 + 1e-9


class TestEfficiency:
    @given(costs, st.integers(min_value=1, max_value=1000))
    def test_in_unit_interval(self, c, p):
        e = efficiency(c, p)
        assert 0 < e <= 1.0 + 1e-9

    @given(costs, st.integers(min_value=1, max_value=500))
    def test_decreases_with_processors(self, c, p):
        assert efficiency(c, p + 1) <= efficiency(c, p) + 1e-12


class TestCurve:
    def test_points_align_with_inputs(self):
        c = Cost(8, 800)
        pts = schedule_curve(c, [1, 2, 4, 8])
        assert [p.processors for p in pts] == [1, 2, 4, 8]
        assert pts[0].time == pytest.approx(808)
        assert pts[-1].time == pytest.approx(108)

    def test_empty_curve(self):
        assert schedule_curve(Cost(1, 1), []) == []
