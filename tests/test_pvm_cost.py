"""Unit and property tests for the (depth, work) cost algebra."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pvm.cost import ZERO, Cost, par, seq

costs = st.builds(
    Cost,
    depth=st.floats(min_value=0, max_value=1e9, allow_nan=False),
    work=st.floats(min_value=0, max_value=1e9, allow_nan=False),
)


class TestConstruction:
    def test_zero_identity_values(self):
        assert ZERO.depth == 0 and ZERO.work == 0

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            Cost(-1, 0)

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            Cost(0, -5)

    def test_frozen(self):
        c = Cost(1, 2)
        with pytest.raises(AttributeError):
            c.depth = 3  # type: ignore[misc]


class TestComposition:
    def test_then_adds_both(self):
        assert Cost(2, 10).then(Cost(3, 7)) == Cost(5, 17)

    def test_beside_takes_max_depth(self):
        assert Cost(2, 10).beside(Cost(3, 7)) == Cost(3, 17)

    def test_operator_aliases(self):
        a, b = Cost(1, 4), Cost(2, 5)
        assert a + b == a.then(b)
        assert (a | b) == a.beside(b)

    def test_scaled(self):
        assert Cost(2, 3).scaled(4) == Cost(8, 12)

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            Cost(1, 1).scaled(-1)

    def test_seq_of_list(self):
        assert seq([Cost(1, 1), Cost(2, 2), Cost(3, 3)]) == Cost(6, 6)

    def test_par_of_list(self):
        assert par([Cost(1, 1), Cost(2, 2), Cost(3, 3)]) == Cost(3, 6)

    def test_seq_empty_is_zero(self):
        assert seq([]) == ZERO

    def test_par_empty_is_zero(self):
        assert par([]) == ZERO


class TestParallelism:
    def test_ratio(self):
        assert Cost(2, 10).parallelism == 5.0

    def test_zero_depth_positive_work_is_inf(self):
        assert Cost(0, 10).parallelism == float("inf")

    def test_zero_cost_is_zero(self):
        assert ZERO.parallelism == 0.0


class TestAlgebraicLaws:
    @given(costs, costs)
    def test_then_commutes(self, a, b):
        assert a.then(b) == b.then(a)

    @given(costs, costs)
    def test_beside_commutes(self, a, b):
        assert a.beside(b) == b.beside(a)

    @given(costs, costs, costs)
    def test_then_associative(self, a, b, c):
        lhs = a.then(b).then(c)
        rhs = a.then(b.then(c))
        assert lhs.depth == pytest.approx(rhs.depth)
        assert lhs.work == pytest.approx(rhs.work)

    @given(costs, costs, costs)
    def test_beside_associative(self, a, b, c):
        lhs = a.beside(b).beside(c)
        rhs = a.beside(b.beside(c))
        assert lhs.depth == pytest.approx(rhs.depth)
        assert lhs.work == pytest.approx(rhs.work)

    @given(costs)
    def test_zero_is_identity_for_both(self, a):
        assert a.then(ZERO) == a
        assert a.beside(ZERO) == a

    @given(costs, costs)
    def test_parallel_never_deeper_than_sequential(self, a, b):
        assert a.beside(b).depth <= a.then(b).depth

    @given(costs, costs)
    def test_work_conserved_under_both(self, a, b):
        assert a.beside(b).work == a.then(b).work
