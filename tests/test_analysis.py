"""Analysis helpers: recurrences, bounds, scaling fits."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.bounds import (
    A_CONST,
    RHO,
    bernoulli_heads_bound,
    duplication_g,
    mgf_path_bound,
    punting_tail_bound,
    punting_tail_bound_corollary,
)
from repro.analysis.fitting import loglinear_fit, polylog_degree_estimate, power_law_fit
from repro.analysis.recurrences import (
    height_constant,
    height_recurrence,
    leaf_recurrence,
    min_valid_m0,
)


class TestRecurrences:
    def test_min_valid_m0_defining_property(self):
        m0 = min_valid_m0(0.8, 0.6)
        assert m0 ** (0.6 - 1.0) <= 0.1 + 1e-12
        assert (m0 - 1) ** (0.6 - 1.0) > 0.1

    def test_min_valid_m0_monotone_in_delta(self):
        assert min_valid_m0(0.9, 0.6) >= min_valid_m0(0.7, 0.6)

    def test_min_valid_m0_invalid_params(self):
        with pytest.raises(ValueError):
            min_valid_m0(1.5, 0.5)
        with pytest.raises(ValueError):
            min_valid_m0(0.5, 1.5)

    def test_height_recurrence_logarithmic(self):
        """h(n) / log2 n approaches a constant: ratios stabilise."""
        m0 = min_valid_m0(0.8, 0.6)
        h1 = height_recurrence(2**14, 0.8, 0.6, m0)
        h2 = height_recurrence(2**20, 0.8, 0.6, m0)
        # 6 extra doublings, constant per-doubling increment ~ 1/log2(1/0.8+)
        assert h2 - h1 <= 6 * 5
        assert h2 > h1

    def test_height_constant_close_to_theory(self):
        """For delta-splits the height constant is ~ 1/log2(1/delta)."""
        m0 = min_valid_m0(0.8, 0.6)
        c = height_constant(0.8, 0.6, m0)
        assert 0.8 <= c <= 1.5 / math.log2(1 / 0.8)

    def test_height_recurrence_invalid_n(self):
        with pytest.raises(ValueError):
            height_recurrence(0, 0.8, 0.6, 64)

    def test_leaf_recurrence_linear(self):
        """s(n) = O(n / m0): leaf count scales linearly."""
        m0 = min_valid_m0(0.8, 0.6)
        s1 = leaf_recurrence(20_000, 0.8, 0.6, m0)
        s2 = leaf_recurrence(80_000, 0.8, 0.6, m0)
        assert s2 <= 4 * s1 * 1.6
        assert s1 <= 20_000 / m0 * 8

    def test_leaf_recurrence_base(self):
        assert leaf_recurrence(10, 0.8, 0.6, 64) == 1

    def test_leaf_recurrence_diverging_params_rejected(self):
        with pytest.raises(ValueError):
            leaf_recurrence(10_000, 0.99, 0.99, 4)


class TestBounds:
    def test_constants(self):
        assert RHO == pytest.approx(math.sqrt(math.e) / 2)
        assert A_CONST == pytest.approx(math.exp(RHO / (1 - RHO)))

    def test_tail_bound_decreases_in_c(self):
        assert punting_tail_bound(1024, 3.0) < punting_tail_bound(1024, 2.0)

    def test_tail_bound_clamped(self):
        assert punting_tail_bound(4, 0.1) == 1.0

    def test_tail_bound_formula(self):
        n, c = 1 << 16, 4.0
        raw = n * A_CONST * math.exp(-c * math.log(n))
        assert punting_tail_bound(n, c) == pytest.approx(raw)

    def test_tail_bound_validates_n(self):
        with pytest.raises(ValueError):
            punting_tail_bound(1, 2.0)

    def test_corollary_threshold(self):
        thr, bound = punting_tail_bound_corollary(1024, 2.0, 3.0)
        assert thr == pytest.approx(2 * 5 * 10)
        assert bound == punting_tail_bound(1024, 2.0)

    def test_corollary_negative_C(self):
        with pytest.raises(ValueError):
            punting_tail_bound_corollary(64, 1.0, -1.0)

    def test_mgf_bound_below_closed_form(self):
        """The finite product is below e^{rho/(1-rho)} for lam = 1/2."""
        assert mgf_path_bound(50) <= A_CONST + 1e-9

    def test_mgf_bound_dominates_simulation(self):
        """Monte-Carlo E[e^{X/2}] along a path stays below the bound."""
        rng = np.random.default_rng(0)
        m = 12
        samples = []
        for _ in range(4000):
            total = 0.0
            for i in range(1, m + 1):
                if rng.random() < 2.0**-i:
                    total += i
            samples.append(math.exp(0.5 * total))
        assert np.mean(samples) <= mgf_path_bound(m)

    def test_mgf_bound_lam_validated(self):
        with pytest.raises(ValueError):
            mgf_path_bound(5, lam=1.0)

    def test_duplication_g_formula(self):
        g = duplication_g(100.0, 4, 0.5, eps=0.0)
        assert g == pytest.approx(100 + 2.0**2 * 4 * 10.0)

    def test_duplication_g_validation(self):
        with pytest.raises(ValueError):
            duplication_g(-1, 3, 0.5)
        with pytest.raises(ValueError):
            duplication_g(10, 3, 1.5)

    def test_bernoulli_bound(self):
        assert bernoulli_heads_bound(10) == 2.0**-20
        with pytest.raises(ValueError):
            bernoulli_heads_bound(10, factor=2.0)

    def test_bernoulli_bound_empirical(self):
        """The paper's retry process: head #i lands with probability
        1 - 2^{-i} (deeper nodes almost never fail).  The total trial count
        exceeding 3m must decay exponentially in m, as Theorem 3.1's
        ``2^{-2m}`` step asserts (we verify the decay *rate* rather than
        the exact constant, which the paper states loosely)."""
        rng = np.random.default_rng(1)

        def tail(m: int, trials: int) -> float:
            bad = 0
            for _ in range(trials):
                flips = 0
                for i in range(1, m + 1):
                    p = 1.0 - 2.0**-i
                    flips += 1
                    while rng.random() >= p:
                        flips += 1
                return_needed = flips > 3 * m
                bad += return_needed
            return bad / trials

        t3 = tail(3, 40_000)
        t6 = tail(6, 40_000)
        assert t3 <= 16 * bernoulli_heads_bound(3)
        assert t6 <= 16 * bernoulli_heads_bound(6) + 2e-4
        # exponential decay: six heads are far safer than three
        assert t6 <= t3 / 4 + 2e-4


class TestFitting:
    def test_power_law_recovers_exponent(self):
        x = np.array([10, 100, 1000, 10000], dtype=float)
        fit = power_law_fit(x, 3.0 * x**0.5)
        assert fit.exponent == pytest.approx(0.5, abs=1e-9)
        assert fit.coeff == pytest.approx(3.0, rel=1e-9)
        assert fit.r2 == pytest.approx(1.0)

    def test_power_law_validation(self):
        with pytest.raises(ValueError):
            power_law_fit([1.0], [1.0])
        with pytest.raises(ValueError):
            power_law_fit([1.0, -2.0], [1.0, 2.0])

    def test_loglinear_recovers_slope(self):
        x = np.array([2**i for i in range(4, 12)], dtype=float)
        fit = loglinear_fit(x, 5.0 * np.log2(x) + 7.0)
        assert fit.exponent == pytest.approx(5.0, abs=1e-9)
        assert fit.coeff == pytest.approx(7.0, abs=1e-6)

    def test_polylog_degree_distinguishes_log_and_log2(self):
        x = np.array([2**i for i in range(6, 16)], dtype=float)
        p_lin = polylog_degree_estimate(x, np.log2(x))
        p_quad = polylog_degree_estimate(x, np.log2(x) ** 2)
        assert p_lin == pytest.approx(1.0, abs=0.01)
        assert p_quad == pytest.approx(2.0, abs=0.01)

    def test_polylog_validation(self):
        with pytest.raises(ValueError):
            polylog_degree_estimate([1.0, 2.0], [1.0, 1.0])

    @given(
        st.floats(min_value=0.1, max_value=3.0),
        st.floats(min_value=0.5, max_value=10.0),
    )
    def test_power_law_roundtrip(self, expo, coeff):
        x = np.array([10.0, 50.0, 250.0, 1250.0])
        fit = power_law_fit(x, coeff * x**expo)
        assert fit.exponent == pytest.approx(expo, rel=1e-6)
