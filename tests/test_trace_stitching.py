"""Cross-process trace stitching tests.

The contract under test: a traced ``frontier-mp`` run grafts every
worker's span tree under the master's ``parallel.subtree`` spans, with
per-worker pid/tid lanes in the Chrome export — while remaining
bit-identical (neighbors, tree, ledger, sections, counters, merged
metrics) to the serial ``frontier`` engine and to its own untraced run,
for any worker count.
"""

import numpy as np
import pytest

import repro
from repro.obs import Span, Tracer, graft_worker_trace, worker_spans
from repro.obs.stitch import _shift
from repro.pvm import Machine
from repro.workloads import uniform_cube


def _run(engine, workers=None, trace=True, n=500, k=2, seed=13):
    pts = uniform_cube(n, 2, seed=1)
    machine = Machine()
    if trace:
        result, tracer = repro.run_traced(
            pts, k, method="fast", machine=machine, seed=seed,
            engine=engine, workers=workers,
        )
        return result, tracer
    result = repro.all_knn(
        pts, k, method="fast", machine=machine, seed=seed,
        engine=engine, workers=workers,
    )
    return result, None


def _structure(tracer):
    """Span-tree structure modulo wall-clock and process identity:
    (tree level, name, cost, stable attrs) in pre-order.  The ``worker``
    attribute is placement, not structure — the plan decides *where* a
    subtree solves, never what is computed — so it is dropped too."""
    drop = {"pid", "tid", "wall_ms", "worker"}
    rows = []
    for root in tracer.roots:
        for level, span in root.walk():
            attrs = {k: v for k, v in span.attrs.items() if k not in drop}
            rows.append((level, span.name, span.cost.depth, span.cost.work,
                         tuple(sorted(attrs.items(), key=lambda kv: kv[0]))))
    return rows


class TestStitchedStructure:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_count_invariant_structure(self, workers, monkeypatch):
        """With the cut target pinned, workers 1/2/4 produce the same
        stitched span-tree structure except for per-task span placement,
        and identical results/ledgers.  (Without the pin the *default*
        target scales with the worker count — by design — so the master
        solves fewer levels itself at higher worker counts.)"""
        monkeypatch.setenv("REPRO_MP_SUBTREE_TARGET", "6")
        ref, ref_tracer = _run("frontier-mp", workers=1)
        got, got_tracer = _run("frontier-mp", workers=workers)
        assert np.array_equal(ref.system.neighbor_indices,
                              got.system.neighbor_indices)
        assert ref.machine.total == got.machine.total
        assert ref.machine.counters == got.machine.counters
        # with a fixed cut target the *entire* stitched structure —
        # master levels, subtree spans, grafted worker trees — is
        # worker-count invariant modulo placement
        assert _structure(ref_tracer) == _structure(got_tracer)
        assert any(
            r[1] == "parallel.subtree" for r in _structure(ref_tracer)
        )

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_serial_frontier(self, workers):
        serial, serial_tracer = _run("frontier")
        mp, mp_tracer = _run("frontier-mp", workers=workers)
        assert np.array_equal(serial.system.neighbor_indices,
                              mp.system.neighbor_indices)
        assert np.array_equal(serial.system.neighbor_sq_dists,
                              mp.system.neighbor_sq_dists)
        assert serial.machine.total == mp.machine.total
        assert serial.machine.sections == mp.machine.sections
        assert serial.machine.counters == mp.machine.counters
        # merged metrics: counters exactly (modulo the mp engine's own
        # parallel.* bookkeeping); series as multisets
        sm = serial.machine.metrics
        mm = mp.machine.metrics
        mm_counters = {k: v for k, v in mm.counters.items()
                       if not k.startswith("parallel.")}
        assert sm.counters == mm_counters
        for key, values in sm.series.items():
            assert sorted(map(repr, values)) == sorted(map(repr, mm.series[key]))

    def test_traced_equals_untraced(self):
        traced, _ = _run("frontier-mp", workers=2, trace=True)
        untraced, _ = _run("frontier-mp", workers=2, trace=False)
        assert np.array_equal(traced.system.neighbor_indices,
                              untraced.system.neighbor_indices)
        assert traced.machine.total == untraced.machine.total
        assert traced.machine.sections == untraced.machine.sections
        assert traced.machine.counters == untraced.machine.counters


class TestGraftedSpans:
    def test_worker_trees_nest_under_subtree_spans(self):
        # n must be large enough that the frontier reaches the workers=4
        # cut target (12 subtrees) before leafing out
        _, tracer = _run("frontier-mp", workers=4, n=800)
        root = tracer.root
        grafted = []
        for _, span in root.walk():
            if span.name == "parallel.subtree":
                grafted.extend(span.children)
        assert grafted, "no worker trees were grafted"
        for child in grafted:
            assert child.name == "worker.subtree"
            assert int(child.attrs["pid"]) != 0
            assert "worker" in child.attrs
            # the worker's own frontier levels ride inside its subtree span
            names = {s.name for _, s in child.walk()}
            assert "frontier.level" in names
        # worker_spans finds exactly the spans with a foreign pid
        ws = worker_spans(root)
        assert len(ws) == sum(1 for g in grafted for _ in g.walk())

    def test_worker_spans_carry_zero_cost(self):
        """The subtree kernel folds costs analytically — worker spans must
        be zero-cost so stitching can never break check_against."""
        _, tracer = _run("frontier-mp", workers=2)
        for span in worker_spans(tracer.root):
            assert span.cost.depth == 0.0 and span.cost.work == 0.0

    def test_check_against_passes_on_stitched_tree(self):
        result, tracer = _run("frontier-mp", workers=4, n=800)
        tracer.check_against(result.machine.total)  # raises on violation

    def test_grafts_within_task_window(self):
        _, tracer = _run("frontier-mp", workers=2)
        for _, span in tracer.root.walk():
            if span.name != "parallel.subtree":
                continue
            for child in span.children:
                assert child.wall_start >= span.wall_start - 1e-6
                assert child.wall_end <= span.wall_end + 1e-6

    def test_four_distinct_worker_lanes_in_chrome_trace(self):
        """Acceptance: workers=4 renders 4 distinct worker lanes."""
        _, tracer = _run("frontier-mp", workers=4, n=800)
        chrome = tracer.to_chrome_trace()
        meta = [e for e in chrome["traceEvents"] if e["ph"] == "M"]
        labels = {e["args"]["name"] for e in meta}
        assert "master" in labels
        worker_labels = {l for l in labels if l.startswith("worker-")}
        assert len(worker_labels) == 4
        worker_pids = {e["pid"] for e in meta if e["pid"] != 0}
        assert len(worker_pids) == 4
        # every X event on a worker pid matches a declared lane
        xpids = {e["pid"] for e in chrome["traceEvents"] if e["ph"] == "X"}
        assert xpids == {e["pid"] for e in meta}

    def test_chrome_trace_round_trips_pid_tid(self):
        _, tracer = _run("frontier-mp", workers=2)
        chrome = tracer.to_chrome_trace()
        by_pid = {}
        for e in chrome["traceEvents"]:
            if e["ph"] == "X":
                by_pid.setdefault(e["pid"], set()).add(e["tid"])
        span_lanes = {}
        for _, s in tracer.root.walk():
            span_lanes.setdefault(int(s.attrs.get("pid", 0)), set()).add(
                int(s.attrs.get("tid", 0))
            )
        assert by_pid == span_lanes


class TestGraftMechanics:
    def _trace_payload(self, epoch, pid=4242, tid=4243):
        from repro.pvm import Cost

        worker_tracer = Tracer(clock=iter([epoch, epoch + 0.1,
                                           epoch + 0.4]).__next__)
        handle = worker_tracer.start("worker.build", {"level": 0},
                                     Cost(0.0, 0.0))
        worker_tracer.stop(handle, Cost(0.0, 0.0))
        return {
            "spans": [r.to_dict() for r in worker_tracer.roots],
            "epoch": epoch,
            "pid": pid,
            "tid": tid,
        }

    def _shard(self, start=10.0, end=11.0):
        return Span(name="frontier.shard", attrs={"worker": 0},
                    wall_start=start, wall_end=end)

    def test_epoch_rebasing(self):
        # worker epoch 100.2 vs master epoch 90.0: offset +10.2
        shard = self._shard(10.0, 11.0)
        roots = graft_worker_trace(
            shard, self._trace_payload(100.2), master_epoch=90.0, worker=3
        )
        (root,) = roots
        assert root.attrs["pid"] == 4242 and root.attrs["tid"] == 4243
        assert root.attrs["worker"] == 3
        assert root.wall_start == pytest.approx(10.3)  # 0.1 + 10.2
        assert root.wall_end == pytest.approx(10.6)
        assert shard.children == [root]

    def test_clamp_when_clocks_incomparable(self):
        # a worker epoch light-years away lands outside the shard window
        shard = self._shard(10.0, 11.0)
        (root,) = graft_worker_trace(
            shard, self._trace_payload(1e6), master_epoch=0.0, worker=0
        )
        assert root.wall_start == pytest.approx(shard.wall_start)
        assert root.wall_end - root.wall_start == pytest.approx(0.3)

    def test_shift_is_uniform_over_tree(self):
        child = Span(name="c", wall_start=1.0, wall_end=2.0)
        parent = Span(name="p", wall_start=0.5, wall_end=3.0,
                      children=[child])
        _shift(parent, 2.5)
        assert (parent.wall_start, parent.wall_end) == (3.0, 5.5)
        assert (child.wall_start, child.wall_end) == (3.5, 4.5)
