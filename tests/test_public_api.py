"""Public API surface: exports resolve, __all__ lists are truthful."""

from __future__ import annotations

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.pvm",
    "repro.geometry",
    "repro.separators",
    "repro.core",
    "repro.baselines",
    "repro.analysis",
    "repro.workloads",
    "repro.util",
]


class TestExports:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_entries_resolve(self, name):
        mod = importlib.import_module(name)
        assert hasattr(mod, "__all__"), f"{name} has no __all__"
        for symbol in mod.__all__:
            assert hasattr(mod, symbol), f"{name}.{symbol} listed but missing"

    @pytest.mark.parametrize("name", PACKAGES)
    def test_no_duplicate_all_entries(self, name):
        mod = importlib.import_module(name)
        assert len(mod.__all__) == len(set(mod.__all__))

    def test_version(self):
        assert repro.__version__

    def test_key_symbols_at_expected_paths(self):
        # the documented entry points of README's quickstart
        from repro.core import knn_graph_edges, parallel_nearest_neighborhood  # noqa: F401
        from repro.pvm import Machine, brent_time  # noqa: F401
        from repro.separators import mttv_separator  # noqa: F401
        from repro.baselines import brute_force_knn  # noqa: F401

    @pytest.mark.parametrize("name", PACKAGES)
    def test_module_docstrings_present(self, name):
        mod = importlib.import_module(name)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 20


class TestDocstringCoverage:
    @pytest.mark.parametrize("name", PACKAGES[1:])
    def test_public_callables_documented(self, name):
        mod = importlib.import_module(name)
        undocumented = []
        for symbol in mod.__all__:
            obj = getattr(mod, symbol)
            if callable(obj) and not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(symbol)
        assert not undocumented, f"{name}: missing docstrings on {undocumented}"
