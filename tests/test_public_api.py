"""Public API surface: exports resolve, __all__ lists are truthful, the
``repro.api`` facade keeps its pinned signature surface, and deprecated
config spellings keep working (with a warning)."""

from __future__ import annotations

import importlib
import importlib.util
import os

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.pvm",
    "repro.geometry",
    "repro.separators",
    "repro.core",
    "repro.baselines",
    "repro.analysis",
    "repro.workloads",
    "repro.util",
    "repro.obs",
    "repro.api",
]


class TestExports:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_entries_resolve(self, name):
        mod = importlib.import_module(name)
        assert hasattr(mod, "__all__"), f"{name} has no __all__"
        for symbol in mod.__all__:
            assert hasattr(mod, symbol), f"{name}.{symbol} listed but missing"

    @pytest.mark.parametrize("name", PACKAGES)
    def test_no_duplicate_all_entries(self, name):
        mod = importlib.import_module(name)
        assert len(mod.__all__) == len(set(mod.__all__))

    def test_version(self):
        assert repro.__version__

    def test_key_symbols_at_expected_paths(self):
        # the documented entry points of README's quickstart
        from repro.core import knn_graph_edges, parallel_nearest_neighborhood  # noqa: F401
        from repro.pvm import Machine, brent_time  # noqa: F401
        from repro.separators import mttv_separator  # noqa: F401
        from repro.baselines import brute_force_knn  # noqa: F401

    def test_facade_reexported_at_package_root(self):
        import repro.api as api

        for name in (
            "all_knn", "build_index", "knn_query", "run_traced",
            "KNNResult", "Index", "CommitInfo",
        ):
            assert getattr(repro, name) is getattr(api, name)

    def test_knnindex_shim_warns_and_aliases_index(self):
        import repro.api as api

        with pytest.warns(DeprecationWarning, match="KNNIndex is deprecated"):
            shim = repro.KNNIndex
        assert shim is api.Index
        with pytest.warns(DeprecationWarning, match="build_index"):
            assert api.KNNIndex is api.Index

    @pytest.mark.parametrize("name", PACKAGES)
    def test_module_docstrings_present(self, name):
        mod = importlib.import_module(name)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 20


class TestDocstringCoverage:
    @pytest.mark.parametrize("name", PACKAGES[1:])
    def test_public_callables_documented(self, name):
        mod = importlib.import_module(name)
        undocumented = []
        for symbol in mod.__all__:
            obj = getattr(mod, symbol)
            if callable(obj) and not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(symbol)
        assert not undocumented, f"{name}: missing docstrings on {undocumented}"


class TestFacadeSurface:
    """The facade's call surface, pinned in code (see also the snapshot lint)."""

    def test_all_knn_signature(self):
        import inspect

        sig = inspect.signature(repro.all_knn)
        assert list(sig.parameters) == [
            "points", "k", "method", "config", "machine", "seed", "engine",
            "workers", "kernels", "dtype",
        ]
        assert sig.parameters["method"].kind is inspect.Parameter.KEYWORD_ONLY
        assert sig.parameters["method"].default == "fast"
        assert sig.parameters["engine"].kind is inspect.Parameter.KEYWORD_ONLY
        assert sig.parameters["engine"].default is None
        assert sig.parameters["workers"].kind is inspect.Parameter.KEYWORD_ONLY
        assert sig.parameters["workers"].default is None
        assert sig.parameters["kernels"].kind is inspect.Parameter.KEYWORD_ONLY
        assert sig.parameters["kernels"].default is None
        assert sig.parameters["dtype"].kind is inspect.Parameter.KEYWORD_ONLY
        assert sig.parameters["dtype"].default is None

    def test_methods_tuple(self):
        from repro.api import METHODS

        assert METHODS == ("fast", "simple", "query", "brute")

    def test_engines_tuple(self):
        from repro.api import ENGINES

        assert ENGINES == ("recursive", "frontier", "frontier-mp")
        assert repro.ENGINES is ENGINES

    def test_unknown_engine_rejected(self):
        from repro.workloads import uniform_cube

        with pytest.raises(ValueError, match="engine"):
            repro.all_knn(uniform_cube(32, 2, 0), 1, engine="warp")

    def test_result_and_index_attributes(self):
        from repro.workloads import uniform_cube

        pts = uniform_cube(64, 2, 1)
        res = repro.all_knn(pts, 2, seed=0)
        assert res.indices.shape == (64, 2)
        assert res.sq_dists.shape == (64, 2)
        assert res.cost.work > 0
        assert res.edges().shape[1] == 2
        index = repro.build_index(pts, 2, seed=0)
        idx, sq = index.query(pts[:5])
        assert idx.shape == (5, 2) and sq.shape == (5, 2)


class TestAPIStabilityLint:
    """scripts/check_api_stability.py agrees with docs/api_surface.txt."""

    @pytest.fixture()
    def lint(self):
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        path = os.path.join(root, "scripts", "check_api_stability.py")
        spec = importlib.util.spec_from_file_location("check_api_stability", path)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        return mod

    def test_surface_snapshot_is_current(self, lint):
        diff = lint.check()
        assert not diff, (
            "repro.api drifted from docs/api_surface.txt:\n" + "\n".join(diff)
            + "\nIf intentional: PYTHONPATH=src python scripts/check_api_stability.py --update"
        )


class TestDeprecatedConfigNames:
    """Renamed config fields: old spellings still work, warning once."""

    def test_m0_constructor_kwarg(self):
        from repro.core import FastDnCConfig, SimpleDnCConfig

        with pytest.warns(DeprecationWarning, match="m0"):
            cfg = FastDnCConfig(m0=17)
        assert cfg.base_case_size == 17
        with pytest.warns(DeprecationWarning, match="m0"):
            cfg2 = SimpleDnCConfig(m0=9)
        assert cfg2.base_case_size == 9

    def test_m0_read_property(self):
        from repro.core import FastDnCConfig

        cfg = FastDnCConfig(base_case_size=21)
        with pytest.warns(DeprecationWarning, match="m0"):
            assert cfg.m0 == 21

    def test_both_spellings_rejected(self):
        from repro.core import FastDnCConfig

        with pytest.raises(TypeError):
            FastDnCConfig(m0=8, base_case_size=16)

    def test_configs_share_common_base(self):
        from repro.core import CommonConfig, FastDnCConfig, QueryConfig, SimpleDnCConfig

        for cls in (FastDnCConfig, SimpleDnCConfig, QueryConfig):
            assert issubclass(cls, CommonConfig)
            cfg = cls(seed=3)
            assert cfg.rng().integers(0, 10) == cls(seed=3).rng().integers(0, 10)
