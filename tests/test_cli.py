"""CLI subcommands, run in-process through main()."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_algo_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["knn", "--algo", "quantum"])

    def test_defaults(self):
        args = build_parser().parse_args(["knn"])
        assert args.n == 4096 and args.k == 1 and args.algo == "fast"


class TestKnnCommand:
    @pytest.mark.parametrize("algo", ["fast", "simple", "kdtree", "grid", "brute"])
    def test_all_algorithms_run(self, algo, capsys):
        rc = main(["knn", "-n", "300", "-k", "1", "--algo", algo, "--check"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "edges" in out
        assert "OK" in out

    def test_scan_policy_accepted(self, capsys):
        assert main(["knn", "-n", "200", "--scan", "log"]) == 0

    def test_save_edges(self, tmp_path, capsys):
        out = tmp_path / "g.npz"
        rc = main(["knn", "-n", "200", "--out", str(out)])
        assert rc == 0
        data = np.load(out)
        assert data["edges"].shape[1] == 2
        assert data["points"].shape == (200, 2)

    def test_points_file_input(self, tmp_path, capsys):
        pts = np.random.default_rng(0).random((150, 3))
        f = tmp_path / "pts.npy"
        np.save(f, pts)
        rc = main(["knn", "--points-file", str(f), "-k", "2", "--check"])
        assert rc == 0

    def test_npz_points_file(self, tmp_path, capsys):
        pts = np.random.default_rng(1).random((100, 2))
        f = tmp_path / "pts.npz"
        np.savez(f, points=pts)
        assert main(["knn", "--points-file", str(f), "--check"]) == 0

    def test_workload_choice(self, capsys):
        assert main(["knn", "-n", "300", "--workload", "clustered", "--check"]) == 0


class TestTelemetryFlags:
    def test_knn_writes_event_and_metrics_sinks(self, tmp_path, capsys):
        import json

        ev = tmp_path / "events.jsonl"
        prom = tmp_path / "metrics.prom"
        rc = main(["knn", "-n", "250", "-k", "1",
                   "--events-out", str(ev), "--metrics-out", str(prom)])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"wrote events {ev}" in out
        assert f"wrote metrics {prom}" in out
        lines = ev.read_text().splitlines()
        assert lines and json.loads(lines[0])["event"] == "run_meta"
        assert "# TYPE repro_fast_nodes_total counter" in prom.read_text()

    def test_scaling_sinks_cover_largest_run(self, tmp_path, capsys):
        prom = tmp_path / "m.prom"
        rc = main(["scaling", "--sizes", "256", "512",
                   "--metrics-out", str(prom)])
        assert rc == 0
        assert prom.exists()
        assert "wrote metrics" in capsys.readouterr().out

    def test_trace_target_is_optional(self, capsys):
        rc = main(["trace", "-n", "200", "-k", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace knn:" in out and "EXACT" in out

    def test_trace_mp_engine_with_sinks(self, tmp_path, capsys):
        ev = tmp_path / "e.jsonl"
        tr = tmp_path / "t.json"
        rc = main(["trace", "-n", "300", "--engine", "frontier-mp",
                   "--workers", "2", "--events-out", str(ev),
                   "--trace-out", str(tr)])
        assert rc == 0
        assert ev.exists() and tr.exists()
        text = ev.read_text()
        assert "shard_dispatch" in text and "shard_complete" in text

    def test_trace_flame_replays_saved_trace(self, tmp_path, capsys):
        tr = tmp_path / "t.json"
        assert main(["trace", "-n", "200", "--trace-out", str(tr)]) == 0
        capsys.readouterr()
        rc = main(["trace", "--flame", str(tr)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "flame summary" in out and "run" in out

    def test_trace_compare_diffs_two_traces(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(["trace", "-n", "200", "--trace-out", str(a)]) == 0
        assert main(["trace", "-n", "400", "--trace-out", str(b)]) == 0
        capsys.readouterr()
        rc = main(["trace", "--compare", str(a), str(b)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-level exclusive work" in out
        assert "all" in out  # totals row

    def test_no_sink_flags_no_files(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["knn", "-n", "200"]) == 0
        assert list(tmp_path.iterdir()) == []


class TestServeCommand:
    def test_serve_knn(self, capsys):
        rc = main(["serve", "-n", "400", "-k", "2", "--queries", "200",
                   "--max-batch", "64"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "serve: kind=knn" in out
        assert "served 200 requests" in out and "in-process" in out
        assert "latency p50=" in out and "QPS=" in out
        assert "p95=" in out and "p99=" in out

    def test_serve_covering_with_cache_repeat(self, capsys):
        rc = main(["serve", "-n", "300", "--kind", "covering",
                   "--queries", "100", "--repeat", "2", "--cache-size", "512"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "served 200 requests" in out
        assert "cache: 100/200 hits (50.0%)" in out  # second pass is cache-hot

    def test_serve_save_then_load_index(self, tmp_path, capsys):
        path = tmp_path / "index.pkl"
        assert main(["serve", "-n", "300", "--queries", "50",
                     "--save-index", str(path)]) == 0
        assert path.exists()
        rc = main(["serve", "--load-index", str(path), "--queries", "50"])
        assert rc == 0
        assert "index loaded" in capsys.readouterr().out

    def test_serve_queries_file_and_sinks(self, tmp_path, capsys):
        qf = tmp_path / "queries.npy"
        np.save(qf, np.random.default_rng(0).random((64, 2)))
        tr, ev, mx = (str(tmp_path / f) for f in
                      ("trace.json", "events.jsonl", "metrics.prom"))
        rc = main(["serve", "-n", "300", "--queries-file", str(qf),
                   "--trace-out", tr, "--events-out", ev, "--metrics-out", mx])
        assert rc == 0
        assert "served 64 requests" in capsys.readouterr().out
        assert "serve.batch" in open(tr).read()
        assert "span_open" in open(ev).read()
        assert 'repro_serve_requests_total{key="serve.requests"} 64.0' in open(mx).read()


class TestUpdateCommand:
    def test_update_generated_stream_with_check(self, capsys):
        rc = main(["update", "-n", "300", "-k", "2", "--commits", "2",
                   "--batch", "10", "--check"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "update: built v0 n=300" in out
        assert out.count("exact") == 2  # every commit equivalence-verified
        assert "commits=2 absorbed=2 punts=0" in out
        assert "final n=300 version=2" in out

    def test_update_mutations_file_and_sinks(self, tmp_path, capsys):
        mf = tmp_path / "muts.jsonl"
        mf.write_text(
            '{"op": "insert", "points": [[0.5, 0.5], [0.25, 0.75]]}\n'
            "# comment lines and blanks are skipped\n\n"
            '{"op": "delete", "ids": [3]}\n'
            '{"op": "commit"}\n'
            '{"op": "insert", "points": [[0.125, 0.875]]}\n'  # trailing batch
        )
        tr, ev, mx = (str(tmp_path / f) for f in
                      ("trace.json", "events.jsonl", "metrics.prom"))
        rc = main(["update", "-n", "300", "-k", "2", "--check",
                   "--mutations-file", str(mf),
                   "--trace-out", tr, "--events-out", ev, "--metrics-out", mx])
        assert rc == 0
        out = capsys.readouterr().out
        assert "final n=302 version=2" in out
        assert "update.absorb" in open(tr).read()
        assert "span_open" in open(ev).read()
        assert 'key="update.commits"' in open(mx).read()

    def test_update_save_index_serves(self, tmp_path, capsys):
        path = tmp_path / "index.pkl"
        assert main(["update", "-n", "300", "-k", "2", "--commits", "1",
                     "--batch", "8", "--save-index", str(path)]) == 0
        capsys.readouterr()
        assert main(["serve", "--load-index", str(path), "--queries", "50"]) == 0
        assert "index loaded" in capsys.readouterr().out

    def test_update_bad_mutations_file(self, tmp_path, capsys):
        mf = tmp_path / "bad.jsonl"
        mf.write_text('{"op": "warp", "ids": [1]}\n')
        with pytest.raises(SystemExit):
            main(["update", "-n", "200", "--mutations-file", str(mf)])

    def test_serve_mutations_file_hot_swaps(self, tmp_path, capsys):
        mf = tmp_path / "muts.jsonl"
        mf.write_text(
            '{"op": "insert", "points": [[0.5, 0.5], [0.25, 0.75]]}\n'
            '{"op": "delete", "ids": [3]}\n'
            '{"op": "commit"}\n'
            '{"op": "insert", "points": [[0.125, 0.875]]}\n'
            '{"op": "commit"}\n'
        )
        rc = main(["serve", "-n", "300", "-k", "2", "--queries", "120",
                   "--max-batch", "32", "--mutations-file", str(mf)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "swap -> v1" in out and "swap -> v2" in out
        assert "index built (online)" in out
        assert "hot swaps: 2" in out and "unfulfilled tickets: 0" in out
        assert "v0" in out and "v2" in out  # per-version latency table
        assert "p99 ms" in out  # per-version table carries the tail too


class TestNetCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["net", "serve"])
        assert args.net_command == "serve"
        assert args.port == 8377 and args.max_batch == 256
        assert not args.no_adaptive and args.uvloop == "auto"
        args = build_parser().parse_args(["net", "load", "--self-serve"])
        assert args.net_command == "load"
        assert args.qps == [200.0, 1000.0] and args.modes == ["adaptive"]

    def test_net_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["net"])

    def test_net_load_self_serve_prints_table(self, capsys):
        rc = main(["net", "load", "--self-serve", "-n", "250",
                   "--qps", "40", "--duration", "0.3",
                   "--modes", "adaptive", "zero", "--seed", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "window=adaptive" in out and "window=zero" in out
        assert "p99 ms" in out and "ach qps" in out

    def test_net_load_writes_table_file(self, tmp_path, capsys):
        table = tmp_path / "sweep" / "net.txt"
        rc = main(["net", "load", "--self-serve", "-n", "200",
                   "--qps", "30", "--duration", "0.25",
                   "--out", str(table)])
        assert rc == 0
        text = table.read_text()
        assert "window=adaptive" in text and "p99 ms" in text
        assert f"wrote {table}" in capsys.readouterr().out


class TestOtherCommands:
    def test_separators(self, capsys):
        rc = main(["separators", "-n", "400", "--draws", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MedianCut" in out and "Sphere" in out

    def test_scaling(self, capsys):
        rc = main(["scaling", "--sizes", "512", "1024"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fast depth" in out

    def test_dissect(self, capsys):
        rc = main(["dissect", "-n", "400", "--min-size", "24"])
        assert rc == 0
        assert "separation OK" in capsys.readouterr().out

    def test_dissect_with_fill(self, capsys):
        rc = main(["dissect", "-n", "300", "--fill"])
        assert rc == 0
        assert "fill-in" in capsys.readouterr().out
