"""Workload generators: shapes, determinism, and the adversarial properties
the E8 experiment relies on."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import brute_force_knn
from repro.geometry.spheres import Hyperplane
from repro.workloads import (
    WORKLOADS,
    annulus,
    clustered,
    collinear,
    concentric_shells,
    gaussian,
    grid_jitter,
    make_workload,
    plane_hugger,
    slab_pairs,
    uniform_ball,
    uniform_cube,
    with_duplicates,
)


class TestShapesAndDeterminism:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    @pytest.mark.parametrize("d", [2, 3])
    def test_shape_and_seed(self, name, d):
        a = make_workload(name, 200, d, 42)
        b = make_workload(name, 200, d, 42)
        c = make_workload(name, 200, d, 43)
        assert a.shape == (200, d)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)
        assert np.isfinite(a).all()

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_workload("fractal", 10, 2)

    def test_uniform_cube_in_bounds(self):
        pts = uniform_cube(500, 3, 0)
        assert (pts >= 0).all() and (pts <= 1).all()

    def test_uniform_ball_in_ball(self):
        pts = uniform_ball(500, 3, 1)
        assert (np.linalg.norm(pts, axis=1) <= 1 + 1e-12).all()

    def test_annulus_radii(self):
        pts = annulus(500, 2, 2, inner=0.8)
        r = np.linalg.norm(pts, axis=1)
        assert (r >= 0.8 - 1e-9).all() and (r <= 1 + 1e-9).all()

    def test_grid_jitter_count(self):
        assert grid_jitter(97, 2, 3).shape == (97, 2)

    def test_collinear_on_line(self):
        pts = collinear(100, 3, 4)
        # all points multiples of (1,1,1)/sqrt(3): cross-coordinates equal
        assert np.allclose(pts[:, 0], pts[:, 1])

    def test_clustered_spread(self):
        pts = clustered(400, 2, 5, clusters=4, spread=0.001)
        nn = brute_force_knn(pts, 1)
        assert np.median(nn.radii) < 0.01

    def test_with_duplicates_fraction(self):
        base = uniform_cube(100, 2, 6)
        pts = with_duplicates(base, 0.5, 7)
        _, counts = np.unique(pts, axis=0, return_counts=True)
        assert (counts > 1).sum() > 10

    def test_gaussian_scale(self):
        pts = gaussian(2000, 2, 8, scale=2.0)
        assert 1.5 < pts.std() < 2.5


class TestAdversarialProperties:
    def test_slab_pairs_nn_across_plane(self):
        """Each point's nearest neighbor is its partner across x0=0, so the
        median hyperplane cut crosses ~n/2 nearest-neighbor balls."""
        n = 512
        pts = slab_pairs(n, 2, 0)
        system = brute_force_knn(pts, 1)
        balls = system.to_ball_system()
        cut = Hyperplane(np.array([1.0, 0.0]), 0.0)
        crossed = balls.intersection_number(cut)
        assert crossed >= 0.9 * n  # Omega(n), as the paper argues

    def test_slab_pairs_partner_structure(self):
        n = 256
        pts = slab_pairs(n, 3, 1)
        system = brute_force_knn(pts, 1)
        pairs = n // 2
        partners = system.neighbor_indices[:pairs, 0]
        # the i-th left point's NN is the i-th right point
        np.testing.assert_array_equal(partners, np.arange(pairs) + pairs)

    def test_slab_pairs_odd_n(self):
        assert slab_pairs(101, 2, 2).shape == (101, 2)

    def test_plane_hugger_thin(self):
        pts = plane_hugger(300, 3, 3, thickness=1e-4)
        assert np.abs(pts[:, 0]).max() <= 1e-4

    def test_plane_hugger_median_cut_crosses_many(self):
        n = 400
        pts = plane_hugger(n, 2, 4)
        balls = brute_force_knn(pts, 1).to_ball_system()
        cut = Hyperplane(np.array([1.0, 0.0]), 0.0)
        assert balls.intersection_number(cut) >= 0.5 * n

    def test_concentric_shells_count(self):
        pts = concentric_shells(403, 2, 5)
        assert pts.shape == (403, 2)

    def test_concentric_shells_plane_through_center_crosses_all_shells(self):
        pts = concentric_shells(400, 2, 6)
        balls = brute_force_knn(pts, 1).to_ball_system()
        plane = Hyperplane(np.array([1.0, 0.0]), 0.0)
        # the plane meets all 4 shells: it must cross balls on each
        assert balls.intersection_number(plane) >= 8


class TestWorkloadIO:
    def test_roundtrip(self, tmp_path):
        from repro.workloads import load_workload, save_workload

        pts = uniform_cube(50, 2, 9)
        f = tmp_path / "w.npz"
        save_workload(f, pts, name="uniform", seed=9)
        rec = load_workload(f)
        np.testing.assert_array_equal(rec.points, pts)
        assert rec.name == "uniform" and rec.seed == 9

    def test_recipe_matches(self, tmp_path):
        from repro.workloads import load_workload, save_workload

        pts = clustered(40, 3, 11)
        f = tmp_path / "w.npz"
        save_workload(f, pts, name="clustered", seed=11)
        assert load_workload(f).matches_recipe()

    def test_recipe_mismatch_detected(self, tmp_path):
        from repro.workloads import load_workload, save_workload

        pts = uniform_cube(40, 2, 1)
        f = tmp_path / "w.npz"
        save_workload(f, pts + 1.0, name="uniform", seed=1)  # tampered
        assert not load_workload(f).matches_recipe()

    def test_regenerate(self, tmp_path):
        from repro.workloads import load_workload, regenerate, save_workload

        pts = gaussian(30, 2, 5)
        f = tmp_path / "w.npz"
        save_workload(f, pts, name="gaussian", seed=5)
        np.testing.assert_array_equal(regenerate(load_workload(f)), pts)

    def test_no_seed_cannot_regenerate(self, tmp_path):
        from repro.workloads import load_workload, regenerate, save_workload

        f = tmp_path / "w.npz"
        save_workload(f, np.zeros((3, 2)))
        rec = load_workload(f)
        assert not rec.matches_recipe()
        with pytest.raises(ValueError):
            regenerate(rec)

    def test_bad_shape_rejected(self, tmp_path):
        from repro.workloads import save_workload

        with pytest.raises(ValueError):
            save_workload(tmp_path / "w.npz", np.zeros(5))

    def test_non_workload_file_rejected(self, tmp_path):
        from repro.workloads import load_workload

        f = tmp_path / "other.npz"
        np.savez(f, stuff=np.zeros(3))
        with pytest.raises(ValueError):
            load_workload(f)


class TestManifoldWorkloads:
    def test_two_moons_shape_and_dims(self):
        from repro.workloads import two_moons

        for d in (2, 3, 4):
            pts = two_moons(151, d, 1)
            assert pts.shape == (151, d)

    def test_spiral_radius_grows_with_angle(self):
        from repro.workloads import spiral

        pts = spiral(400, 2, 2, noise=0.0)
        r = np.linalg.norm(pts, axis=1)
        # points are generated in angle order: radius is monotone-ish
        assert r[-1] > r[0]
        assert (np.diff(r) >= -1e-6).mean() > 0.95

    def test_fast_dnc_exact_on_manifolds(self):
        from repro.core import parallel_nearest_neighborhood
        from repro.workloads import spiral, two_moons

        for gen in (two_moons, spiral):
            pts = gen(350, 2, 3)
            res = parallel_nearest_neighborhood(pts, 2, seed=4)
            assert res.system.same_distances(brute_force_knn(pts, 2))

    def test_spiral_nn_follows_arc(self):
        from repro.workloads import spiral

        pts = spiral(500, 2, 5, noise=0.0)
        nn = brute_force_knn(pts, 1)
        # points were generated sorted by arc parameter: nearest neighbor is
        # overwhelmingly an arc-adjacent point
        adj = np.abs(nn.neighbor_indices[:, 0] - np.arange(500))
        assert (adj <= 2).mean() > 0.9
