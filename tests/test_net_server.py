"""Loopback integration of the HTTP front-end.

The acceptance contract (ISSUE 8): every ``/v1/query`` answer is
bit-identical to ``Batcher.submit`` against the same index version —
including under a mid-traffic mutate commit + hot swap — no request is
dropped during a graceful drain, overload sheds with 429s, deadlines
return 504, and a pooled server drains leak-free.

Every test spins its own :class:`ServerThread` on an ephemeral port and
talks real HTTP over loopback via the shared minimal client.
"""

from __future__ import annotations

import asyncio
import glob
import json
import threading

import numpy as np
import pytest

from repro.api import net_serve
from repro.net import NetConfig, ServerThread, http_request
from repro.parallel.shm import SHM_PREFIX
from repro.workloads import uniform_cube

N = 400
D = 2
SEED = 17


def _request(port, path, payload=None, method="POST", timeout_s=30.0):
    return asyncio.run(http_request("127.0.0.1", port, path, payload,
                                    method=method, timeout_s=timeout_s))


def _server(k=2, points=None, **cfg_kwargs):
    cfg_kwargs.setdefault("port", 0)
    cfg = NetConfig(**cfg_kwargs)
    pts = points if points is not None else uniform_cube(N, D, seed=SEED)
    return net_serve(pts, k, net=cfg, seed=SEED + 1)


def _as_f64(nested):
    return np.asarray(nested, dtype=np.float64)


class TestEndpoints:
    def test_healthz_reports_tenants(self):
        with ServerThread(_server()) as st:
            status, body, _ = _request(st.port, "/healthz", method="GET")
        assert status == 200
        assert body["status"] == "ok" and not body["draining"]
        (tenant,) = body["tenants"]
        assert tenant["name"] == "default" and tenant["n"] == N
        assert tenant["version"] == 0

    def test_metrics_exposition(self):
        with ServerThread(_server()) as st:
            _request(st.port, "/v1/query", {"point": [0.5, 0.5]})
            status, _, text = _request(st.port, "/metrics", method="GET")
        assert status == 200
        assert "repro_net_requests_total" in text
        assert "repro_net_queries_total" in text
        assert "repro_serve_served_total" in text  # default tenant, unprefixed

    def test_unknown_route_404(self):
        with ServerThread(_server()) as st:
            status, body, _ = _request(st.port, "/v1/nope", {})
        assert status == 404 and "no route" in body["error"]

    @pytest.mark.parametrize("payload,fragment", [
        ({"point": [0.1]}, "dimension mismatch"),
        ({"point": [0.1, 0.2], "points": [[0.1, 0.2]]}, "exactly one"),
        ({}, "exactly one"),
        ({"point": [float("nan"), 0.0]}, "finite"),
        ({"point": [0.1, 0.2], "k": 0}, "positive integer"),
        ({"point": [0.1, 0.2], "kind": "telepathy"}, "unknown kind"),
        ({"point": [0.1, 0.2], "index": "nope"}, "unknown index"),
        ({"point": [0.1, 0.2], "deadline_ms": -1}, "deadline_ms"),
    ])
    def test_bad_query_payloads_4xx(self, payload, fragment):
        with ServerThread(_server()) as st:
            status, body, _ = _request(st.port, "/v1/query", payload)
        assert status in (400, 404)
        assert fragment in body["error"]

    def test_malformed_json_body_400(self):
        async def _send_garbage(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"POST /v1/query HTTP/1.1\r\nHost: t\r\n"
                         b"Content-Length: 5\r\nConnection: close\r\n\r\n{nope")
            await writer.drain()
            raw = await reader.read(-1)
            writer.close()
            await writer.wait_closed()
            return raw

        with ServerThread(_server()) as st:
            # empty body parses as {} -> must name a point
            status, body, _ = _request(st.port, "/v1/query", None)
            assert status == 400 and "exactly one" in body["error"]
            raw = asyncio.run(_send_garbage(st.port))
        head, _, tail = raw.partition(b"\r\n\r\n")
        assert b"400 Bad Request" in head
        assert b"malformed JSON" in tail


class TestLoopbackEquivalence:
    def test_single_queries_bit_identical_to_batcher(self):
        server = _server(k=2)
        snap = server.tenants.get().batcher.index
        probes = np.vstack([uniform_cube(12, D, seed=23),
                            snap.points[:4]])  # exact data points too
        want_idx, want_sq = snap.execute("knn", probes, 2)
        with ServerThread(server) as st:
            for i, probe in enumerate(probes):
                status, body, _ = _request(
                    st.port, "/v1/query", {"point": probe.tolist()})
                assert status == 200
                assert body["version"] == 0 and body["k"] == 2
                (res,) = body["results"]
                np.testing.assert_array_equal(res["ids"], want_idx[i])
                # float64 over JSON is repr-round-tripped: bit-exact
                assert _as_f64(res["sq_dists"]).tobytes() == \
                    want_sq[i].tobytes()

    def test_batched_multi_point_query(self):
        server = _server(k=1)
        snap = server.tenants.get().batcher.index
        probes = uniform_cube(9, D, seed=29)
        want_idx, want_sq = snap.execute("knn", probes, 1)
        with ServerThread(server) as st:
            status, body, _ = _request(
                st.port, "/v1/query", {"points": probes.tolist()})
        assert status == 200
        assert len(body["results"]) == 9
        for i, res in enumerate(body["results"]):
            np.testing.assert_array_equal(res["ids"], want_idx[i])
            assert _as_f64(res["sq_dists"]).tobytes() == want_sq[i].tobytes()

    def test_k_override_bypasses_batcher_but_stays_exact(self):
        server = _server(k=1)
        snap = server.tenants.get().batcher.index
        probes = uniform_cube(5, D, seed=31)
        want_idx, want_sq = snap.execute("knn", probes, 3)
        with ServerThread(server) as st:
            status, body, _ = _request(
                st.port, "/v1/query", {"points": probes.tolist(), "k": 3})
        assert status == 200 and body["k"] == 3
        for i, res in enumerate(body["results"]):
            np.testing.assert_array_equal(res["ids"], want_idx[i])
            assert _as_f64(res["sq_dists"]).tobytes() == want_sq[i].tobytes()

    def test_mutate_commit_swaps_mid_traffic(self):
        server = _server(k=1)
        tenant = server.tenants.get()
        probe = uniform_cube(1, D, seed=37)[0]
        with ServerThread(server) as st:
            status, before, _ = _request(
                st.port, "/v1/query", {"point": probe.tolist()})
            assert status == 200 and before["version"] == 0
            # delete the probe's nearest neighbor, insert replacements
            victim = before["results"][0]["ids"][0]
            rng = np.random.default_rng(41)
            status, mut, _ = _request(st.port, "/v1/mutate", {
                "insert": rng.random((3, D)).tolist(),
                "delete": [victim],
                "commit": True,
            })
            assert status == 200
            assert mut["committed"] and mut["version"] == 1
            assert mut["commit"]["inserted"] == 3
            assert mut["commit"]["deleted"] == 1
            assert mut["pending"] == {"inserts": 0, "deletes": 0}
            status, after, _ = _request(
                st.port, "/v1/query", {"point": probe.tolist()})
            assert status == 200 and after["version"] == 1
            # post-swap answers are bit-identical to the new snapshot...
            snap = tenant.batcher.index
            want_idx, want_sq = snap.execute("knn", probe[None, :], 1)
            np.testing.assert_array_equal(
                after["results"][0]["ids"], want_idx[0])
            assert _as_f64(after["results"][0]["sq_dists"]).tobytes() == \
                want_sq[0].tobytes()
            # ...and genuinely differ from the old version's
            assert after["results"][0]["ids"][0] != victim

    def test_mutate_without_commit_buffers(self):
        with ServerThread(_server()) as st:
            status, body, _ = _request(st.port, "/v1/mutate", {
                "insert": [[0.5, 0.5], [0.25, 0.75]],
            })
            assert status == 200
            assert not body["committed"] and body["version"] == 0
            assert body["pending"] == {"inserts": 2, "deletes": 0}
            status, body, _ = _request(st.port, "/v1/mutate", {
                "delete": ["x"],
            })
            assert status == 400

    def test_queued_requests_answered_by_old_version_across_swap(self):
        """A request admitted under version v is answered by version v,
        even when a commit + swap lands while it waits for its batch."""
        server = _server(k=1, adaptive=False, max_wait_ms=4000.0)
        tenant = server.tenants.get()
        old_snap = tenant.batcher.index
        probe = uniform_cube(1, D, seed=43)[0]
        want_idx, want_sq = old_snap.execute("knn", probe[None, :], 1)
        result = {}

        def _slow_query():
            result["response"] = _request(
                st.port, "/v1/query", {"point": probe.tolist()})

        with ServerThread(server) as st:
            t = threading.Thread(target=_slow_query)
            t.start()
            # wait until the query is actually queued in the batcher
            for _ in range(2000):
                if tenant.batcher.pending:
                    break
                threading.Event().wait(0.005)
            assert tenant.batcher.pending == 1
            status, mut, _ = _request(st.port, "/v1/mutate", {
                "insert": np.random.default_rng(47).random((2, D)).tolist(),
                "commit": True,
            })
            assert mut["committed"] and mut["flushed"] == 1
            t.join(timeout=30)
            assert not t.is_alive()
        status, body, _ = result["response"]
        assert status == 200
        assert body["version"] == 0  # the version that admitted it
        np.testing.assert_array_equal(body["results"][0]["ids"], want_idx[0])
        assert _as_f64(body["results"][0]["sq_dists"]).tobytes() == \
            want_sq[0].tobytes()


class TestBackpressure:
    def test_rate_limit_sheds_with_429_and_retry_after(self):
        server = _server(rate=1.0, burst=1)
        with ServerThread(server) as st:
            status, _, _ = _request(st.port, "/v1/query", {"point": [0.5, 0.5]})
            assert status == 200

            async def _raw():
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", st.port)
                body = json.dumps({"point": [0.5, 0.5]}).encode()
                writer.write((
                    "POST /v1/query HTTP/1.1\r\nHost: t\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n").encode() + body)
                await writer.drain()
                raw = await reader.read(-1)
                writer.close()
                await writer.wait_closed()
                return raw

            raw = asyncio.run(_raw())
            head = raw.partition(b"\r\n\r\n")[0].decode()
            assert "429 Too Many Requests" in head
            assert "Retry-After: 1" in head
            status, _, text = _request(st.port, "/metrics", method="GET")
        assert 'repro_net_rejected_rate_total{key="net.rejected_rate"} 1.0' \
            in text

    def test_deadline_exceeded_is_504(self):
        # fixed 2s window, no other traffic: a 5ms deadline must fire
        server = _server(adaptive=False, max_wait_ms=2000.0)
        with ServerThread(server) as st:
            status, body, _ = _request(
                st.port, "/v1/query",
                {"point": [0.5, 0.5], "deadline_ms": 5})
            assert status == 504 and "deadline" in body["error"]
            status, _, text = _request(st.port, "/metrics", method="GET")
            assert "repro_net_deadline_exceeded_total" in text
            summary = st.stop()
        # the 504'd slot still executed at drain; nothing leaked or hung
        assert summary["clean"]

    def test_server_config_deadline_caps_requested(self):
        server = _server(adaptive=False, max_wait_ms=2000.0, deadline_ms=5.0)
        with ServerThread(server) as st:
            status, body, _ = _request(
                st.port, "/v1/query",
                {"point": [0.5, 0.5], "deadline_ms": 60000})
        assert status == 504  # capped at the server's 5ms default


class TestDrain:
    def test_drain_completes_inflight_requests(self):
        server = _server(k=1, adaptive=False, max_wait_ms=8000.0)
        snap = server.tenants.get().batcher.index
        probe = uniform_cube(1, D, seed=53)[0]
        want_idx, _ = snap.execute("knn", probe[None, :], 1)
        result = {}

        def _waiting_query():
            result["response"] = _request(
                st.port, "/v1/query", {"point": probe.tolist()})

        st = ServerThread(server).start()
        t = threading.Thread(target=_waiting_query)
        t.start()
        for _ in range(2000):
            if server.tenants.get().batcher.pending:
                break
            threading.Event().wait(0.005)
        summary = st.stop()
        t.join(timeout=30)
        assert not t.is_alive()
        status, body, _ = result["response"]
        assert status == 200  # drained, not dropped
        np.testing.assert_array_equal(body["results"][0]["ids"], want_idx[0])
        assert summary["clean"] and summary["inflight_remaining"] == 0
        assert summary["flushed"] >= 1

    def test_drain_is_idempotent_and_rejects_new_requests(self):
        server = _server()
        st = ServerThread(server).start()
        first = st.stop()
        assert st.stop() is first
        assert server.draining
        with pytest.raises((ConnectionError, OSError)):
            _request(st.port, "/healthz", method="GET", timeout_s=2.0)

    def test_event_loop_fallback_warns_once(self, monkeypatch):
        """The repro[net] uvloop extra mirrors the repro[perf] numba
        pattern: a missing accelerator warns once and falls back."""
        import warnings

        import repro.net as net

        monkeypatch.setattr(net, "_UVLOOP_OK", False)
        monkeypatch.setattr(net, "_WARNED_FALLBACK", False)
        assert net.install_event_loop("asyncio") == "asyncio"
        with pytest.warns(RuntimeWarning, match=r"repro\[net\]"):
            assert net.install_event_loop("uvloop") == "asyncio"
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second call must stay silent
            assert net.install_event_loop("uvloop") == "asyncio"
            assert net.install_event_loop("auto") == "asyncio"
        with pytest.raises(ValueError, match="unknown uvloop mode"):
            net.install_event_loop("twisted")

    def test_pooled_server_drains_leak_free(self):
        before = set(glob.glob(f"/dev/shm/{SHM_PREFIX}*"))
        server = _server(k=1, serve_workers=2)
        snap = server.tenants.get().batcher.index
        probes = uniform_cube(6, D, seed=59)
        want_idx, _ = snap.execute("knn", probes, 1)
        with ServerThread(server) as st:
            status, body, _ = _request(
                st.port, "/v1/query", {"points": probes.tolist()})
            assert status == 200
            for i, res in enumerate(body["results"]):
                np.testing.assert_array_equal(res["ids"], want_idx[i])
        assert set(glob.glob(f"/dev/shm/{SHM_PREFIX}*")) <= before
