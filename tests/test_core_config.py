"""CommonConfig: shared knobs, engine validation, renamed-field shims.

``tests/test_public_api.py`` covers the deprecation behavior as seen
through the package facade; this file tests :mod:`repro.core.config`
itself — the base dataclass, the engine gate, and the derived budget
helpers the algorithms share.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core import CommonConfig, ENGINES, FastDnCConfig, QueryConfig, SimpleDnCConfig
from repro.core.config import RENAMED_CONFIG_FIELDS, supports_renamed_fields

ALL_CONFIGS = [FastDnCConfig, SimpleDnCConfig, QueryConfig]


class TestEngineField:
    def test_engines_constant(self):
        assert ENGINES == ("recursive", "frontier", "frontier-mp")

    @pytest.mark.parametrize("cls", ALL_CONFIGS + [CommonConfig])
    def test_default_is_recursive(self, cls):
        assert cls().engine == "recursive"

    @pytest.mark.parametrize("cls", ALL_CONFIGS + [CommonConfig])
    @pytest.mark.parametrize("engine", ENGINES)
    def test_valid_engines_accepted(self, cls, engine):
        assert cls(engine=engine).engine == engine

    @pytest.mark.parametrize("cls", ALL_CONFIGS + [CommonConfig])
    @pytest.mark.parametrize("bad", ["warp", "", "Recursive", "FRONTIER", None])
    def test_invalid_engines_rejected(self, cls, bad):
        with pytest.raises(ValueError, match="engine"):
            cls(engine=bad)

    def test_error_message_lists_choices(self):
        with pytest.raises(ValueError, match="recursive.*frontier"):
            CommonConfig(engine="batched")


class TestRenamedFields:
    def test_registry_shape(self):
        assert RENAMED_CONFIG_FIELDS == {"m0": "base_case_size"}

    @pytest.mark.parametrize("cls", ALL_CONFIGS)
    def test_m0_kwarg_forwards_with_warning(self, cls):
        with pytest.warns(DeprecationWarning, match="m0"):
            cfg = cls(m0=23)
        assert cfg.base_case_size == 23

    @pytest.mark.parametrize("cls", ALL_CONFIGS + [CommonConfig])
    def test_m0_property_warns_on_read(self, cls):
        cfg = cls(base_case_size=11)
        with pytest.warns(DeprecationWarning, match="m0"):
            assert cfg.m0 == 11

    @pytest.mark.parametrize("cls", ALL_CONFIGS)
    def test_both_spellings_rejected(self, cls):
        with pytest.raises(TypeError, match="m0"):
            cls(m0=8, base_case_size=16)

    def test_canonical_spelling_never_warns(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cfg = FastDnCConfig(base_case_size=32)
            assert cfg.base_case_size == 32

    def test_decorator_on_fresh_class(self):
        from dataclasses import dataclass

        @supports_renamed_fields
        @dataclass(frozen=True)
        class Demo:
            base_case_size: int = 4

        with pytest.warns(DeprecationWarning):
            assert Demo(m0=7).base_case_size == 7


class TestSharedHelpers:
    def test_rng_explicit_seed_wins(self):
        cfg = CommonConfig(seed=1)
        a = cfg.rng(99).integers(0, 1 << 30)
        b = np.random.default_rng(99).integers(0, 1 << 30)
        assert a == b

    def test_rng_falls_back_to_config_seed(self):
        cfg = CommonConfig(seed=5)
        assert cfg.rng().integers(0, 1 << 30) == np.random.default_rng(5).integers(0, 1 << 30)

    def test_mu_monotone_in_dimension(self):
        cfg = CommonConfig()
        mus = [cfg.mu(d) for d in (1, 2, 3, 8)]
        assert mus == sorted(mus)
        assert all(m <= 0.98 for m in mus)

    def test_iota_budget_carries_k_factor(self):
        cfg = FastDnCConfig()
        assert cfg.iota_budget(10_000, 2, k=4) == pytest.approx(
            2.0 * cfg.iota_budget(10_000, 2, k=1)
        )
        assert cfg.iota_budget(2, 2) >= 4.0  # floor

    def test_base_size_floor(self):
        cfg = CommonConfig(base_case_size=4)
        assert cfg.base_size(k=10) >= 11
        assert CommonConfig(base_case_size=64).base_size(k=1) == 64
