#!/usr/bin/env python
"""API stability lint: diff the live ``repro.api`` surface against the
checked-in ``docs/api_surface.txt``.

The facade (:mod:`repro.api`) is the repository's compatibility promise:
its functions, their keyword signatures, the result classes and their
public methods/properties.  This script renders that surface as sorted
text lines and compares them to the committed snapshot, so any signature
change shows up as a reviewable diff — and an *unreviewed* change fails
the test suite (``tests/test_public_api.py`` runs :func:`check`).

Usage::

    PYTHONPATH=src python scripts/check_api_stability.py          # lint
    PYTHONPATH=src python scripts/check_api_stability.py --update # resnapshot
"""

from __future__ import annotations

import difflib
import inspect
import os
import sys
from typing import List

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SURFACE_PATH = os.path.join(REPO_ROOT, "docs", "api_surface.txt")


def _signature(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):  # pragma: no cover - builtins only
        return "(...)"


def describe_api() -> List[str]:
    """Render the ``repro.api`` public surface as sorted text lines."""
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    import repro
    import repro.api as api

    lines = [f"repro.__all__: {', '.join(sorted(repro.__all__))}"]
    for name in sorted(api.__all__):
        obj = getattr(api, name)
        if inspect.isclass(obj):
            lines.append(f"repro.api.{name} (class)")
            for attr in sorted(vars(obj)):
                if attr.startswith("_"):
                    continue
                member = inspect.getattr_static(obj, attr)
                if isinstance(member, property):
                    lines.append(f"repro.api.{name}.{attr} (property)")
                elif callable(member):
                    lines.append(f"repro.api.{name}.{attr}{_signature(member)}")
            for fname in sorted(getattr(obj, "__dataclass_fields__", {})):
                if not fname.startswith("_"):
                    lines.append(f"repro.api.{name}.{fname} (field)")
        elif callable(obj):
            lines.append(f"repro.api.{name}{_signature(obj)}")
        else:
            # pin constant values (METHODS, ENGINES) so adding/removing a
            # method or engine shows up as a reviewable diff
            lines.append(f"repro.api.{name} = {obj!r}")
    return lines


def check() -> List[str]:
    """Return a unified-diff line list; empty means the surface is stable."""
    current = describe_api()
    try:
        with open(SURFACE_PATH) as fh:
            pinned = fh.read().splitlines()
    except FileNotFoundError:
        return [f"missing snapshot {SURFACE_PATH}; run with --update"]
    return list(
        difflib.unified_diff(pinned, current, "docs/api_surface.txt", "live repro.api", lineterm="")
    )


def main(argv: List[str]) -> int:
    if "--update" in argv:
        os.makedirs(os.path.dirname(SURFACE_PATH), exist_ok=True)
        with open(SURFACE_PATH, "w") as fh:
            fh.write("\n".join(describe_api()) + "\n")
        print(f"wrote {SURFACE_PATH}")
        return 0
    diff = check()
    if diff:
        print("repro.api surface drifted from docs/api_surface.txt:")
        print("\n".join(diff))
        print("\nIf the change is intentional, rerun with --update and commit the diff.")
        return 1
    print("repro.api surface matches docs/api_surface.txt")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
