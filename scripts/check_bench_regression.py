#!/usr/bin/env python
"""Performance-regression gate over the benchmark observability records.

The paper's claims are (depth, work) bounds, and every engine promises
bit-identical ledgers seed-for-seed — so the strongest regression signal
this repo has is *exact* ledger comparison.  This script re-runs a small
registry of fully seeded gate workloads and compares their obs summaries
(total depth/work, per-phase sections, event counters) against the
committed baseline ``benchmarks/results/regression_gate_obs.json``:

- ledger fields must match **exactly** (any drift is a correctness or
  cost-model regression, not noise);
- wall-clock must stay within ``--wall-tol`` of the baseline (relative;
  skipped entirely in ``--exact-ledger`` mode, which is what CI uses —
  baselines are committed from other hardware);
- the tracing self-check re-asserts a zero traced-vs-untraced ledger
  delta (see :mod:`repro.obs.overhead`).

Usage::

    PYTHONPATH=src python scripts/check_bench_regression.py               # gate
    PYTHONPATH=src python scripts/check_bench_regression.py --exact-ledger
    PYTHONPATH=src python scripts/check_bench_regression.py --update      # rebaseline
    PYTHONPATH=src python scripts/check_bench_regression.py --compare A.json B.json
    PYTHONPATH=src python scripts/check_bench_regression.py --perturb-work 0.01

``--compare`` diffs any two obs-record JSON files (e.g. a fresh
``benchmarks/results/a3_frontier_engine_obs.json`` against the committed
copy) with the same rules.  ``--perturb-work`` injects a relative error
into the fresh records before comparing — the CI negative test asserts
the gate *fails* under it.  Exit codes: 0 pass, 1 regression, 2 usage.

``--wall-trend BASELINE.json FRESH.json`` is the *performance-trend*
mode used by the nightly workflow: it compares only ``wall_seconds``
between records with matching (run/experiment, params) keys — ledger
fields are ignored — and fails when any fresh wall-clock exceeds its
baseline by more than ``--wall-tol`` (default 15%%).  Keys present on
only one side are reported as notes, never failures, so adding a new
benchmark cell does not break the trend gate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join(
    REPO_ROOT, "benchmarks", "results", "regression_gate_obs.json"
)

#: The gate registry: small, fully seeded, engine-diverse workloads.
#: Each entry must be cheap enough for CI (< a few seconds) while
#: covering both algorithms and all three engines.
GATE_RUNS = (
    {"run": "fast_recursive", "method": "fast", "n": 1500, "d": 2, "k": 2,
     "seed": 42, "engine": "recursive", "workers": None},
    {"run": "fast_frontier", "method": "fast", "n": 3000, "d": 2, "k": 2,
     "seed": 42, "engine": "frontier", "workers": None},
    {"run": "fast_frontier_mp_w2", "method": "fast", "n": 3000, "d": 2,
     "k": 2, "seed": 42, "engine": "frontier-mp", "workers": 2},
    {"run": "fast_d3", "method": "fast", "n": 2000, "d": 3, "k": 1,
     "seed": 7, "engine": "frontier", "workers": None},
    {"run": "simple_frontier", "method": "simple", "n": 2000, "d": 2,
     "k": 1, "seed": 11, "engine": "frontier", "workers": None},
)


def run_gates(names: Optional[List[str]] = None) -> List[Dict[str, Any]]:
    """Execute the gate registry, returning obs-summary records."""
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.api import all_knn
    from repro.pvm import Machine
    from repro.workloads import uniform_cube

    records = []
    for spec in GATE_RUNS:
        if names and spec["run"] not in names:
            continue
        pts = uniform_cube(spec["n"], spec["d"], spec["seed"])
        machine = Machine()
        t0 = time.perf_counter()
        all_knn(
            pts, spec["k"], method=spec["method"], machine=machine,
            seed=spec["seed"], engine=spec["engine"], workers=spec["workers"],
        )
        wall = time.perf_counter() - t0
        total = machine.total
        counters = {
            k: v for k, v in sorted(machine.counters.items())
        }
        records.append({
            "run": spec["run"],
            "params": {k: v for k, v in spec.items() if k != "run"},
            "total": {"depth": total.depth, "work": total.work},
            "phases": {
                phase: {"depth": cost.depth, "work": cost.work}
                for phase, cost in sorted(machine.sections.items())
            },
            "counters": counters,
            "wall_seconds": wall,
        })
    return records


def _index(records: List[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    out = {}
    for rec in records:
        key = rec.get("run") or rec.get("experiment")
        if key is None:
            continue
        params = rec.get("params", {})
        out[f"{key}:{json.dumps(params, sort_keys=True, default=str)}"] = rec
    return out


def compare_records(
    baseline: List[Dict[str, Any]],
    fresh: List[Dict[str, Any]],
    *,
    wall_tol: float,
    exact_ledger: bool,
) -> List[str]:
    """Compare obs records; return a list of human-readable failures."""
    failures: List[str] = []
    base_idx = _index(baseline)
    fresh_idx = _index(fresh)
    missing = sorted(set(base_idx) - set(fresh_idx))
    for key in missing:
        failures.append(f"{key.split(':')[0]}: missing from fresh run set")
    for key, fresh_rec in sorted(fresh_idx.items()):
        name = key.split(":")[0]
        base_rec = base_idx.get(key)
        if base_rec is None:
            failures.append(
                f"{name}: no committed baseline (run with --update to add)"
            )
            continue
        for field in ("depth", "work"):
            a = base_rec["total"][field]
            b = fresh_rec["total"][field]
            if a != b:
                failures.append(
                    f"{name}: total {field} {b} != baseline {a} (exact match required)"
                )
        base_phases = base_rec.get("phases", {})
        fresh_phases = fresh_rec.get("phases", {})
        for phase in sorted(set(base_phases) | set(fresh_phases)):
            a, b = base_phases.get(phase), fresh_phases.get(phase)
            if a != b:
                failures.append(
                    f"{name}: phase {phase!r} {b} != baseline {a}"
                )
        if base_rec.get("counters") is not None and (
            base_rec.get("counters") != fresh_rec.get("counters")
        ):
            a, b = base_rec["counters"], fresh_rec.get("counters") or {}
            diff = {
                k: (a.get(k), b.get(k))
                for k in sorted(set(a) | set(b)) if a.get(k) != b.get(k)
            }
            failures.append(f"{name}: counters differ: {diff}")
        if not exact_ledger:
            a = base_rec.get("wall_seconds")
            b = fresh_rec.get("wall_seconds")
            if a and b and abs(b - a) > wall_tol * a:
                failures.append(
                    f"{name}: wall {b:.3f}s outside +/-{wall_tol:.0%} of "
                    f"baseline {a:.3f}s"
                )
    return failures


def compare_wall_trend(
    baseline: List[Dict[str, Any]],
    fresh: List[Dict[str, Any]],
    *,
    wall_tol: float,
) -> tuple[List[str], List[str]]:
    """Wall-clock-only trend comparison.

    Returns ``(failures, notes)``: a failure for every matching record
    whose fresh ``wall_seconds`` exceeds baseline by more than
    ``wall_tol`` (relative); notes for unmatched keys and records
    without wall data.  Ledger fields are deliberately ignored — the
    exact-ledger gate covers those; this mode exists to catch gradual
    wall-clock regressions between same-hardware nightly runs.
    """
    failures: List[str] = []
    notes: List[str] = []
    base_idx = _index(baseline)
    fresh_idx = _index(fresh)
    for key in sorted(set(base_idx) - set(fresh_idx)):
        notes.append(f"{key.split(':')[0]}: baseline-only key (not re-run)")
    for key in sorted(set(fresh_idx) - set(base_idx)):
        notes.append(f"{key.split(':')[0]}: new key (no baseline yet)")
    for key in sorted(set(base_idx) & set(fresh_idx)):
        name = key.split(":")[0]
        a = base_idx[key].get("wall_seconds")
        b = fresh_idx[key].get("wall_seconds")
        if not a or not b:
            notes.append(f"{name}: no wall_seconds on one side; skipped")
            continue
        if b > a * (1.0 + wall_tol):
            failures.append(
                f"{name}: wall {b:.3f}s is {(b / a - 1.0):+.1%} vs baseline "
                f"{a:.3f}s (trend tolerance +{wall_tol:.0%})"
            )
        else:
            notes.append(
                f"{name}: wall {b:.3f}s vs baseline {a:.3f}s "
                f"({(b / a - 1.0):+.1%})"
            )
    return failures, notes


def _load(path: str) -> List[Dict[str, Any]]:
    with open(path) as fh:
        loaded = json.load(fh)
    if not isinstance(loaded, list):
        raise ValueError(f"{path}: expected a JSON list of obs records")
    return loaded


def _perturb(records: List[Dict[str, Any]], rel: float) -> None:
    for rec in records:
        if "total" in rec:
            rec["total"]["work"] = rec["total"]["work"] * (1.0 + rel)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Exact-ledger perf-regression gate over obs baselines."
    )
    parser.add_argument("--update", action="store_true",
                        help="rewrite the committed gate baseline from a fresh run")
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="baseline JSON path (default: committed gate file)")
    parser.add_argument("--runs", default=None,
                        help="comma-separated subset of gate run names")
    parser.add_argument("--wall-tol", type=float, default=None,
                        help="relative wall-clock tolerance (default 0.5 for "
                             "the gate/--compare modes, 0.15 for --wall-trend)")
    parser.add_argument("--exact-ledger", action="store_true",
                        help="compare ledgers and counters only; ignore wall-clock "
                             "(CI mode: baselines come from other hardware)")
    parser.add_argument("--perturb-work", type=float, default=None, metavar="REL",
                        help="inject a relative work error into the fresh records "
                             "(negative test: the gate must then fail)")
    parser.add_argument("--compare", nargs=2, default=None,
                        metavar=("BASELINE.json", "FRESH.json"),
                        help="compare two obs-record files instead of running gates")
    parser.add_argument("--wall-trend", nargs=2, default=None,
                        metavar=("BASELINE.json", "FRESH.json"),
                        help="wall-clock-only trend comparison between two "
                             "obs-record files (same-hardware nightly mode); "
                             "fails on > --wall-tol relative regression, "
                             "unmatched keys are notes")
    parser.add_argument("--skip-overhead", action="store_true",
                        help="skip the tracing zero-ledger-delta self-check")
    args = parser.parse_args(argv)

    if args.wall_trend:
        wall_tol = 0.15 if args.wall_tol is None else args.wall_tol
        try:
            baseline = _load(args.wall_trend[0])
            fresh = _load(args.wall_trend[1])
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        failures, notes = compare_wall_trend(
            baseline, fresh, wall_tol=wall_tol
        )
        for note in notes:
            print(f"  note: {note}")
        if failures:
            print(f"WALL-TREND REGRESSION: {len(failures)} failure(s)",
                  file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print(f"wall-trend gate: OK (tolerance +{wall_tol:.0%})")
        return 0

    wall_tol = 0.5 if args.wall_tol is None else args.wall_tol
    if args.compare:
        try:
            baseline = _load(args.compare[0])
            fresh = _load(args.compare[1])
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.perturb_work is not None:
            _perturb(fresh, args.perturb_work)
        failures = compare_records(
            baseline, fresh,
            wall_tol=wall_tol, exact_ledger=args.exact_ledger,
        )
        return _report(failures)

    names = args.runs.split(",") if args.runs else None
    fresh = run_gates(names)
    if args.update:
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        with open(args.baseline, "w") as fh:
            json.dump(fresh, fh, indent=1)
            fh.write("\n")
        print(f"wrote baseline {args.baseline} ({len(fresh)} gate runs)")
        return 0
    if not os.path.exists(args.baseline):
        print(f"error: no baseline at {args.baseline}; run with --update",
              file=sys.stderr)
        return 2
    baseline = _load(args.baseline)
    if names:
        baseline = [r for r in baseline if r.get("run") in names]
    if args.perturb_work is not None:
        _perturb(fresh, args.perturb_work)
    failures = compare_records(
        baseline, fresh, wall_tol=wall_tol, exact_ledger=args.exact_ledger,
    )
    if not args.skip_overhead and not failures:
        from repro.obs.overhead import measure_overhead

        report = measure_overhead(n=5000, repeats=1)
        if report.ledger_delta != 0:
            failures.append(
                f"tracing self-check: traced vs untraced ledger delta "
                f"{report.ledger_delta} != 0"
            )
        else:
            print(f"tracing self-check: ledger delta 0 (exact), "
                  f"overhead {report.overhead_fraction:+.1%} at n=5000")
    return _report(failures)


def _report(failures: List[str]) -> int:
    if failures:
        print(f"REGRESSION: {len(failures)} failure(s)", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("bench regression gate: OK (all ledgers exact)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
